// The grx::Server contract (docs/api.md, "The query server"):
//
//  1. Oracle parity under concurrency — any number of client threads
//     submitting any mix of queries get results byte-identical to a
//     serial, single-thread Engine serving the same requests, coalescer
//     on or off: worker interleaving and lane demux never alter bytes.
//     (FP-valued PageRank requires pinning the workers' OpenMP width to
//     one, which the parity tests do via omp_threads_per_worker.)
//  2. Coalescing is a throughput lever, not a semantic: fused queries
//     (batch_lanes > 1) return exactly what solo enacts would, per lane.
//  3. Shutdown is graceful — stop() (or destruction) drains every
//     accepted query; tickets outlive the server; a stopped server
//     rejects new work loudly.
//  4. The Engine reentry guard fires on concurrent misuse (CheckError),
//     instead of letting two threads corrupt pooled Problem state.
//
// This suite (with test_engine) is the one CI runs under ThreadSanitizer:
// every cross-thread handoff below — MPMC queue, coalesce window, ticket
// fulfillment, stop/join — must be TSan-clean.
#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "api/faults.hpp"
#include "api/server.hpp"
#include "graph/generators.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace grx {
namespace {

using testing::ThreadRestorer;

/// The shared serving graph (same shape as test_engine's) — the hoisted
/// power-law fixture from test_common.hpp.
const Csr& serving_graph() { return testing::power_law_serving_graph(10); }

/// What a serial single-thread Engine answers for `req` — the oracle
/// every concurrently-served result must equal byte-for-byte.
QueryResult oracle_result(Engine& eng, const QueryRequest& req) {
  QueryResult r;
  r.kind = req.kind;
  switch (req.kind) {
    case QueryKind::kBfs:
      r.depth = eng.bfs(req.source, req.opts).depth;
      break;
    case QueryKind::kSssp:
      r.dist = eng.sssp(req.source, req.opts).dist;
      break;
    case QueryKind::kReachability: {
      const std::vector<std::uint32_t> depth =
          eng.bfs(req.source, req.opts).depth;
      r.reachable.resize(depth.size());
      for (std::size_t v = 0; v < depth.size(); ++v)
        r.reachable[v] = depth[v] != kInfinity ? 1 : 0;
      break;
    }
    case QueryKind::kBcForward: {
      const BcResult bc = eng.bc(req.source, req.opts);
      r.depth = bc.depth;
      r.sigma = bc.sigma;
      break;
    }
    case QueryKind::kCc:
      r.component = eng.cc(req.opts).component;
      break;
    case QueryKind::kPagerank:
      r.rank = eng.pagerank(req.opts).rank;
      break;
  }
  return r;
}

/// Byte-exact comparison of the fields `kind` fills (sigma/rank included:
/// sigma is integer-valued, rank is single-thread-deterministic here).
void expect_equal(const QueryResult& got, const QueryResult& want,
                  const std::string& ctx) {
  ASSERT_EQ(got.kind, want.kind) << ctx;
  EXPECT_EQ(got.depth, want.depth) << ctx;
  EXPECT_EQ(got.dist, want.dist) << ctx;
  EXPECT_EQ(got.reachable, want.reachable) << ctx;
  EXPECT_EQ(got.sigma, want.sigma) << ctx;
  EXPECT_EQ(got.component, want.component) << ctx;
  EXPECT_EQ(got.rank, want.rank) << ctx;
}

/// A seeded mixed workload over every query kind with varied (sometimes
/// fuse-incompatible) options, so the coalescer's compat key and the
/// demux both get exercised.
std::vector<QueryRequest> mixed_requests(const Csr& g, std::size_t count,
                                         std::uint64_t seed) {
  constexpr QueryKind kKinds[] = {QueryKind::kBfs,          QueryKind::kSssp,
                                  QueryKind::kReachability, QueryKind::kBcForward,
                                  QueryKind::kCc,           QueryKind::kPagerank};
  Rng rng(seed);
  std::vector<QueryRequest> reqs;
  reqs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    QueryRequest req;
    req.kind = kKinds[i % std::size(kKinds)];
    req.source = static_cast<VertexId>(rng.next_below(g.num_vertices()));
    if (req.kind == QueryKind::kBfs || req.kind == QueryKind::kReachability)
      req.opts.direction = i % 2 ? Direction::kOptimal : Direction::kPush;
    if (req.kind == QueryKind::kSssp) {
      req.opts.delta = i % 3 == 0 ? 16 : 0;
      req.opts.use_priority_queue = i % 3 != 2;
    }
    reqs.push_back(req);
  }
  return reqs;
}

// --- 1 + 2: oracle parity under concurrency, coalescer on ------------------

TEST(ServerOracle, ConcurrentMixedClientsMatchSerialEngine) {
  const Csr& g = serving_graph();
  const std::vector<QueryRequest> reqs = mixed_requests(g, 48, 99);

  // Serial oracle: one engine, one thread, request order.
  std::vector<QueryResult> want;
  {
    ThreadRestorer tr;
    omp_set_num_threads(1);
    simt::Device dev;
    Engine eng(dev, g);
    for (const QueryRequest& req : reqs) want.push_back(oracle_result(eng, req));
  }

  ServerOptions so;
  so.num_workers = 3;
  so.omp_threads_per_worker = 1;  // byte-exact FP (PageRank) vs the oracle
  so.coalesce_window_us = 1000;
  Server server(g, so);

  // 6 client threads submit interleaved stripes of the request list.
  constexpr std::size_t kClients = 6;
  std::vector<QueryTicket> tickets(reqs.size());
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = c; i < reqs.size(); i += kClients)
        tickets[i] = server.submit(reqs[i]);
    });
  }
  for (std::thread& t : clients) t.join();

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    expect_equal(tickets[i].get(), want[i], "request " + std::to_string(i));
  }
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries_served, reqs.size());
  EXPECT_GE(stats.enacts, 1u);
}

TEST(ServerCoalescer, FusedBatchesDemuxToSoloBytes) {
  const Csr& g = serving_graph();
  // One worker + a generous window: the submission burst below lands in
  // the queue while the worker holds its first partial batch, so fusion
  // is effectively guaranteed (and asserted).
  ServerOptions so;
  so.num_workers = 1;
  so.omp_threads_per_worker = 1;
  so.coalesce_window_us = 100000;  // 100 ms
  so.max_batch = 64;
  Server server(g, so);

  Rng rng(7);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 96; ++i) {
    QueryRequest req;
    req.kind = i % 2 ? QueryKind::kSssp : QueryKind::kBfs;
    // Duplicate sources are legal and must demux independently.
    req.source = static_cast<VertexId>(
        rng.next_below(std::min<VertexId>(g.num_vertices(), 40)));
    reqs.push_back(req);
  }
  std::vector<QueryTicket> tickets;
  for (const QueryRequest& req : reqs) tickets.push_back(server.submit(req));

  std::vector<QueryResult> got;
  for (QueryTicket& t : tickets) got.push_back(t.get());
  server.stop();

  // Fusion actually happened, and widely.
  const ServerStats stats = server.stats();
  EXPECT_GE(stats.max_lanes, 2u);
  EXPECT_GT(stats.coalesced_queries, 0u);
  EXPECT_LT(stats.enacts, reqs.size());

  ThreadRestorer tr;
  omp_set_num_threads(1);
  simt::Device dev;
  Engine eng(dev, g);
  bool saw_fused = false;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    saw_fused |= got[i].batch_lanes > 1;
    expect_equal(got[i], oracle_result(eng, reqs[i]),
                 "request " + std::to_string(i));
  }
  EXPECT_TRUE(saw_fused);
}

TEST(ServerCoalescer, IncompatibleOptionsNeverFuseWrongConfig) {
  // Same primitive, different delta: results must match each request's
  // own configuration (distances are delta-invariant, but the near/far
  // schedule is exercised vs not — bytes must still match the oracle).
  const Csr& g = serving_graph();
  ServerOptions so;
  so.num_workers = 2;
  so.omp_threads_per_worker = 1;
  so.coalesce_window_us = 5000;
  Server server(g, so);

  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 24; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSssp;
    req.source = static_cast<VertexId>(i * 7 % g.num_vertices());
    req.opts.delta = i % 2 ? 16 : 0;
    req.opts.use_priority_queue = i % 2 != 0;
    reqs.push_back(req);
  }
  std::vector<QueryTicket> tickets;
  for (const QueryRequest& req : reqs) tickets.push_back(server.submit(req));

  ThreadRestorer tr;
  omp_set_num_threads(1);
  simt::Device dev;
  Engine eng(dev, g);
  for (std::size_t i = 0; i < reqs.size(); ++i)
    expect_equal(tickets[i].get(), oracle_result(eng, reqs[i]),
                 "request " + std::to_string(i));
}

// --- 3: shutdown -------------------------------------------------------------

TEST(ServerShutdown, StopDrainsInflightQueries) {
  const Csr& g = serving_graph();
  ServerOptions so;
  so.num_workers = 2;
  Server server(g, so);
  std::vector<QueryTicket> tickets;
  std::vector<VertexId> sources;
  for (VertexId s = 0; s < 40; ++s) {
    sources.push_back(s % g.num_vertices());
    tickets.push_back(server.submit_bfs(sources.back()));
  }
  server.stop();  // rejects new work, serves everything accepted, joins

  for (std::size_t i = 0; i < tickets.size(); ++i) {
    ASSERT_TRUE(tickets[i].ready()) << "ticket " << i << " abandoned by stop";
    const QueryResult r = tickets[i].get();
    EXPECT_FALSE(r.depth.empty()) << i;
    EXPECT_EQ(r.depth[sources[i]], 0u) << i;
  }
  EXPECT_EQ(server.stats().queries_served, tickets.size());
}

TEST(ServerShutdown, TicketsOutliveTheServer) {
  const Csr& g = serving_graph();
  std::vector<QueryTicket> tickets;
  {
    ServerOptions so;
    so.num_workers = 2;
    Server server(g, so);
    for (VertexId s = 0; s < 16; ++s)
      tickets.push_back(server.submit_bfs(s));
  }  // destructor: graceful stop + drain
  for (VertexId s = 0; s < 16; ++s) {
    const QueryResult r = tickets[s].get();
    EXPECT_EQ(r.depth[s], 0u);
  }
}

TEST(ServerShutdown, ConcurrentStopIsSafe) {
  // stop() races stop() (and the destructor): the joins are serialized
  // internally, so both callers return cleanly with all queries served.
  const Csr& g = serving_graph();
  ServerOptions so;
  so.num_workers = 2;
  Server server(g, so);
  std::vector<QueryTicket> tickets;
  for (VertexId s = 0; s < 8; ++s) tickets.push_back(server.submit_bfs(s));
  std::thread other([&] { server.stop(); });
  server.stop();
  other.join();
  for (QueryTicket& t : tickets) EXPECT_FALSE(t.get().depth.empty());
}

TEST(ServerShutdown, ZeroQueriesThenDestroy) {
  const Csr& g = serving_graph();
  { Server server(g); }  // construct, never submit, destroy: no hang
  Server twice(g);
  twice.stop();
  twice.stop();  // stop is idempotent
  SUCCEED();
}

TEST(ServerShutdown, SubmitAfterStopThrows) {
  const Csr& g = serving_graph();
  Server server(g);
  server.stop();
  EXPECT_THROW(server.submit_bfs(0), CheckError);
}

// --- misuse fails loudly ------------------------------------------------------

TEST(ServerMisuse, InvalidSubmissionsThrowInTheSubmittingThread) {
  const Csr& g = serving_graph();
  Server server(g);
  EXPECT_THROW(server.submit_bfs(g.num_vertices()), CheckError);

  // A genuinely weightless CSR (build_csr always stores weights, so one
  // is assembled by hand): SSSP must be rejected at submit, in the
  // submitting thread, not discovered by a worker.
  const Csr unweighted(3, {0, 1, 3, 4}, {1, 0, 2, 1});
  ASSERT_FALSE(unweighted.has_weights());
  Server plain(unweighted);
  EXPECT_THROW(plain.submit_sssp(0), CheckError);
  (void)plain.submit_bfs(0).get();  // BFS on an unweighted graph is fine
}

TEST(ServerMisuse, TicketIsOneShot) {
  const Csr& g = serving_graph();
  Server server(g);
  QueryTicket t = server.submit_bfs(1);
  (void)t.get();
  EXPECT_FALSE(t.valid());
  EXPECT_THROW(t.get(), CheckError);
  EXPECT_FALSE(QueryTicket{}.ready());
}

// --- 4: the Engine reentry guard ---------------------------------------------

TEST(EngineGuard, ConcurrentEnactOnOneEngineFailsLoudly) {
  const Csr& g = serving_graph();
  simt::Device dev;
  Engine eng(dev, g);
  (void)eng.bfs(0);  // sequential reuse never trips the guard

  // A deliberately long query occupies the engine; once busy() is
  // observed, a query from this thread must hit the guard. If the long
  // query finished first (slow machine scheduling), no harm was done —
  // the guard saw a free engine — so retry with the next attempt.
  QueryOptions slow;
  slow.epsilon = 0.0;  // never converges early
  slow.max_iterations = 4000;
  bool fired = false;
  for (int attempt = 0; attempt < 5 && !fired; ++attempt) {
    std::thread occupant([&] {
      PagerankResult r;
      eng.pagerank(r, slow);
    });
    Timer deadline;
    while (!eng.busy() && deadline.elapsed_ms() < 2000.0)
      std::this_thread::yield();
    if (eng.busy()) {
      try {
        (void)eng.bfs(0);
      } catch (const CheckError&) {
        fired = true;
      }
    }
    occupant.join();
  }
  EXPECT_TRUE(fired) << "two overlapping enacts never tripped the guard";

  // The guard threw before touching any state: the engine still serves.
  const BfsResult after = eng.bfs(0);
  EXPECT_EQ(after.depth[0], 0u);
}

// --- the result cache (docs/api.md, "The result cache") ----------------------

/// Cache-on server options for the deterministic cases below: one worker
/// (so publish always precedes the next dequeue) and solo OpenMP.
ServerOptions cached_options(std::uint32_t workers = 1) {
  ServerOptions so;
  so.num_workers = workers;
  so.omp_threads_per_worker = 1;
  so.cache.enabled = true;
  return so;
}

/// Spin until `n` enacts have STARTED (the stat bumps after the cache
/// consult registers in-flight keys but before the engine runs), bounded
/// so a wedged server fails the test instead of hanging it.
void wait_for_enacts(const Server& s, std::uint64_t n) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (s.stats().enacts < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "worker never picked up the query";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(ServerCache, HitServesIdenticalBytesWithoutAnEnact) {
  const Csr& g = serving_graph();
  ServerOptions so = cached_options();
  so.coalesce = false;
  Server server(g, so);

  const QueryRequest req{QueryKind::kBfs, 5, {}};
  const QueryResult miss = server.submit(req).get();
  EXPECT_FALSE(miss.cached);
  EXPECT_EQ(miss.batch_lanes, 1u);

  const QueryResult hit = server.submit(req).get();
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.batch_lanes, 0u) << "a hit must not enact";

  simt::Device dev;
  Engine oracle(dev, g);
  const QueryResult want = oracle_result(oracle, req);
  expect_equal(miss, want, "miss");
  expect_equal(hit, want, "hit");

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.enacts, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.dedup_attached, 0u);
  EXPECT_EQ(s.cache_entries, 1u);
  EXPECT_EQ(s.queries_served, 2u) << "hits count under served";
}

TEST(ServerCache, KeySeparatesSourceKindAndFuseOptions) {
  Server server(serving_graph(), cached_options());
  (void)server.submit_bfs(3).get();
  EXPECT_FALSE(server.submit_bfs(4).get().cached) << "different source";
  EXPECT_FALSE(server.submit_sssp(3).get().cached) << "different kind";
  QueryOptions scalar;
  scalar.backend.vec = simt::VecBackend::kScalar;
  EXPECT_FALSE(server.submit_bfs(3, scalar).get().cached)
      << "different fuse-compat options";
  EXPECT_TRUE(server.submit_bfs(3).get().cached) << "exact key repeats hit";
  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_entries, 4u);
}

TEST(ServerCache, PerQueryOptOutNeverHitsNorPublishes) {
  ServerOptions so = cached_options();
  so.coalesce = false;
  Server server(serving_graph(), so);
  QueryOptions nocache;
  nocache.cache = false;

  (void)server.submit_bfs(2, nocache).get();
  EXPECT_FALSE(server.submit_bfs(2, nocache).get().cached)
      << "opted-out results must not publish";
  // An entry published by an opted-in query is invisible to an opted-out
  // one too: opting out forces a dedicated enact, both directions.
  (void)server.submit_bfs(2).get();
  EXPECT_FALSE(server.submit_bfs(2, nocache).get().cached);

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.enacts, 4u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 1u) << "only the opted-in query probes";
  EXPECT_EQ(s.cache_entries, 1u);
}

TEST(ServerCache, EpochPublishInvalidatesPriorEntries) {
  // A 0->1->2->3 chain; epoch 1 inserts the shortcut 0->3, so a stale
  // epoch-0 hit would be byte-detectable (depth[3]: 3 vs 1).
  const Csr chain(4, {0, 1, 2, 3, 3}, {1, 2, 3}, {1, 1, 1});
  DynamicGraph dyn(chain, DynamicGraphOptions{});
  ServerOptions so = cached_options();
  so.coalesce = false;
  Server server(dyn, so);

  const QueryResult r0 = server.submit_bfs(0).get();
  EXPECT_EQ(r0.epoch, 0u);
  EXPECT_EQ(r0.depth[3], 3u);
  EXPECT_TRUE(server.submit_bfs(0).get().cached) << "hot at epoch 0";

  const std::vector<EdgeUpdate> shortcut{EdgeUpdate::insert_edge(0, 3, 1)};
  ASSERT_EQ(server.apply_updates(shortcut), 1u);
  const QueryResult r1 = server.submit_bfs(0).get();
  EXPECT_FALSE(r1.cached) << "prior-epoch entry must be unreachable";
  EXPECT_EQ(r1.epoch, 1u);
  EXPECT_EQ(r1.depth[3], 1u) << "the epoch-1 edge must be visible";
  EXPECT_TRUE(server.submit_bfs(0).get().cached) << "hot again at epoch 1";

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_GE(s.cache_evictions, 1u) << "the publish sweep frees old epochs";
  EXPECT_EQ(s.cache_entries, 1u);
}

TEST(ServerCoalescer, InBatchDuplicatesCollapseToOneLane) {
  // Cache OFF: the batch-build collapse alone must keep duplicate
  // (source, fuse-key) members out of extra lanes, with the demuxed
  // result fanned to every ticket byte-identically.
  const Csr& g = serving_graph();
  ServerOptions so;
  so.num_workers = 1;
  so.omp_threads_per_worker = 1;
  so.coalesce_window_us = 200000;  // one wide window catches the burst
  Server server(g, so);

  std::vector<QueryTicket> dups;
  for (int i = 0; i < 3; ++i) dups.push_back(server.submit_bfs(7));
  QueryTicket other = server.submit_bfs(9);

  simt::Device dev;
  Engine eng(dev, g);
  const QueryResult want7 = oracle_result(eng, {QueryKind::kBfs, 7, {}});
  const QueryResult want9 = oracle_result(eng, {QueryKind::kBfs, 9, {}});
  for (QueryTicket& t : dups) {
    const QueryResult r = t.get();
    EXPECT_EQ(r.batch_lanes, 2u) << "duplicates must share one lane";
    EXPECT_FALSE(r.cached);
    expect_equal(r, want7, "duplicate member");
  }
  expect_equal(other.get(), want9, "distinct member");

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.enacts, 1u);
  EXPECT_EQ(s.max_lanes, 2u) << "4 members, 2 lanes";
  EXPECT_EQ(s.dedup_attached, 2u);
  EXPECT_EQ(s.queries_served, 4u);
}

TEST(ServerCache, SingleflightAttachedCancelLeavesOthersServed) {
  // Wedge the owner's enact with a stall, attach two duplicates to its
  // in-flight key, cancel ONE of them: the cancel must resolve alone,
  // the other waiter and the owner still get the value.
  ServerOptions so = cached_options(2);
  so.coalesce_window_us = 0;  // drain-only batches
  auto plan = std::make_shared<FaultPlan>();
  plan->script = {{FaultKind::kStall, 0, 400000}};
  so.faults = plan;
  Server server(serving_graph(), so);

  QueryTicket owner = server.submit_bfs(11);
  wait_for_enacts(server, 1);  // key registered, worker 1 wedged mid-enact

  QueryRequest dup{QueryKind::kBfs, 11, {}};
  dup.cancel = CancelToken::make();
  QueryTicket attached_cancel = server.submit(dup);
  QueryTicket attached_live = server.submit_bfs(11);

  // Worker 2 parks both on the wedged key; observe it, then cancel one.
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.stats().dedup_attached < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "duplicates never attached to the in-flight key";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dup.cancel.cancel();

  const QueryResult ro = owner.get();
  EXPECT_FALSE(ro.cached);
  ASSERT_TRUE(attached_cancel.wait_for(std::chrono::seconds(5)));
  EXPECT_EQ(attached_cancel.outcome(), QueryOutcome::kCancelled);
  EXPECT_THROW(attached_cancel.get(), CancelledError);
  const QueryResult rl = attached_live.get();
  EXPECT_TRUE(rl.cached);
  EXPECT_EQ(rl.batch_lanes, 0u);
  EXPECT_EQ(rl.depth, ro.depth) << "fan-out bytes == owner bytes";

  server.stop();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.queries_served, 2u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.dedup_attached, 2u);
  EXPECT_EQ(s.cache_misses, 1u);
  EXPECT_EQ(s.queries_submitted,
            s.queries_served + s.cancelled);  // identity, no other terms
}

}  // namespace
}  // namespace grx
