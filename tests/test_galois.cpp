// Validation of the Galois-model worklist engine against serial oracles,
// plus worklist-structure unit tests.
#include <gtest/gtest.h>

#include "baselines/galois/galois.hpp"
#include "baselines/serial/serial.hpp"
#include "graph/datasets.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

TEST(GaloisWorklist, ChunkedFifoDrains) {
  galois::Worklist wl(4);
  for (std::uint32_t i = 0; i < 10; ++i) wl.push(i);
  std::vector<std::uint32_t> chunk;
  std::size_t total = 0;
  while (wl.pop_chunk(chunk)) {
    EXPECT_LE(chunk.size(), 4u);
    total += chunk.size();
  }
  EXPECT_EQ(total, 10u);
  EXPECT_TRUE(wl.empty());
}

TEST(GaloisWorklist, PushWhileDraining) {
  galois::Worklist wl(2);
  wl.push(1);
  std::vector<std::uint32_t> chunk;
  ASSERT_TRUE(wl.pop_chunk(chunk));
  wl.push(2);
  ASSERT_TRUE(wl.pop_chunk(chunk));
  EXPECT_EQ(chunk[0], 2u);
}

TEST(GaloisObim, DrainsLowestBucketFirst) {
  galois::ObimWorklist wl(10);
  wl.push(100, 95);  // bucket 9
  wl.push(200, 5);   // bucket 0
  wl.push(300, 12);  // bucket 1
  std::vector<std::uint32_t> b;
  ASSERT_TRUE(wl.pop_bucket(b));
  EXPECT_EQ(b, (std::vector<std::uint32_t>{200}));
  ASSERT_TRUE(wl.pop_bucket(b));
  EXPECT_EQ(b, (std::vector<std::uint32_t>{300}));
  ASSERT_TRUE(wl.pop_bucket(b));
  EXPECT_EQ(b, (std::vector<std::uint32_t>{100}));
  EXPECT_FALSE(wl.pop_bucket(b));
}

TEST(GaloisObim, LowerPushReopensCursor) {
  galois::ObimWorklist wl(10);
  wl.push(1, 50);
  std::vector<std::uint32_t> b;
  ASSERT_TRUE(wl.pop_bucket(b));
  wl.push(2, 5);  // lower bucket after cursor advanced
  ASSERT_TRUE(wl.pop_bucket(b));
  EXPECT_EQ(b, (std::vector<std::uint32_t>{2}));
}

class GaloisDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(GaloisDatasetTest, BfsMatchesOracle) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  EXPECT_EQ(galois::bfs(g, 0), serial::bfs(g, 0));
}

TEST_P(GaloisDatasetTest, SsspMatchesDijkstra) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  EXPECT_EQ(galois::sssp(g, 0), serial::dijkstra(g, 0));
}

TEST_P(GaloisDatasetTest, CcMatchesUnionFind) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  EXPECT_TRUE(testing::same_partition(galois::connected_components(g),
                                      serial::connected_components(g)));
}

INSTANTIATE_TEST_SUITE_P(Datasets, GaloisDatasetTest,
                         ::testing::Values("soc-orkut-s", "roadnet-s"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(GaloisEngine, BcMatchesBrandes) {
  const Csr g = testing::random_graph(256, 1024, 8);
  EXPECT_TRUE(testing::near_vectors(galois::bc(g, 3),
                                    serial::brandes_bc(g, 3), 1e-6));
}

TEST(GaloisEngine, SsspDeltaSweepAgrees) {
  const Csr g = testing::random_graph(512, 2048, 13);
  const auto oracle = serial::dijkstra(g, 2);
  for (std::uint32_t delta : {1u, 16u, 256u})
    EXPECT_EQ(galois::sssp(g, 2, delta), oracle) << delta;
}

TEST(GaloisEngine, ResidualPagerankConvergesToPowerIteration) {
  // No dangling vertices (the residual formulation parks dangling mass
  // rather than redistributing it, so oracle comparison needs min-degree
  // >= 1 — random_graph threads a path through every vertex).
  const Csr g = testing::random_graph(512, 4096, 31);
  const auto oracle = serial::pagerank(g, 0.85, 200);  // converged
  const auto got = galois::pagerank(g, 0.85, 1e-10);
  double l1 = 0.0;
  for (std::size_t v = 0; v < oracle.size(); ++v)
    l1 += std::abs(oracle[v] - got[v]);
  EXPECT_LT(l1, 1e-3);
}

TEST(GaloisEngine, PagerankIsDistribution) {
  const Csr g = testing::random_graph(256, 1024, 21);
  const auto r = galois::pagerank(g);
  double total = 0.0;
  for (double x : r) {
    EXPECT_GT(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace grx
