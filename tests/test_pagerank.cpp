#include <gtest/gtest.h>

#include <numeric>

#include "baselines/serial/serial.hpp"
#include "graph/datasets.hpp"
#include "primitives/pagerank.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

class PrDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PrDatasetTest, MatchesPowerIteration) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  const auto oracle = serial::pagerank(g, 0.85, 20);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;  // no frontier pruning: exact match to the oracle
  opts.max_iterations = 20;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  EXPECT_TRUE(testing::near_vectors(r.rank, oracle, 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Datasets, PrDatasetTest,
                         ::testing::Values("soc-orkut-s", "kron-s",
                                           "roadnet-s"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Pagerank, SumsToOne) {
  const Csr g = build_dataset("hollywood-s", /*shrink=*/5);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  EXPECT_NEAR(sum(r.rank), 1.0, 1e-9);
}

TEST(Pagerank, StarGraphClosedForm) {
  // Undirected star, d = damping, n-1 leaves: by symmetry all leaves equal
  // and center + (n-1) leaf = 1. Center: c = (1-d)/n + d * (n-1) * l_share
  // where each leaf sends all its rank to the center.
  const std::uint32_t n = 11;
  const Csr g = testing::undirected(star_graph(n));
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  opts.max_iterations = 200;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  const double d = opts.damping;
  // Fixed point: center = (1-d)/n + d * (sum of leaves), each leaf
  // = (1-d)/n + d * center/(n-1).
  const double leaf = (1.0 - d) / n * (1.0 + d) / (1.0 - d * d * 1.0);
  (void)leaf;  // closed form below via linear solve:
  // center = (1-d)/n + d*L where L = total leaf mass
  // L = (n-1)*[(1-d)/n + d*center/(n-1)] = (n-1)(1-d)/n + d*center
  // => center = (1-d)/n + d[(n-1)(1-d)/n + d*center]
  const double center =
      ((1.0 - d) / n + d * (n - 1) * (1.0 - d) / n) / (1.0 - d * d);
  EXPECT_NEAR(r.rank[0], center, 1e-9);
  for (VertexId v = 1; v < n; ++v)
    EXPECT_NEAR(r.rank[v], (1.0 - center) / (n - 1), 1e-9);
}

TEST(Pagerank, UniformOnRegularGraph) {
  // On a cycle (2-regular), PageRank is exactly uniform.
  const Csr g = testing::undirected(cycle_graph(64));
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  for (VertexId v = 0; v < 64; ++v) EXPECT_NEAR(r.rank[v], 1.0 / 64, 1e-12);
}

TEST(Pagerank, DanglingMassRedistributed) {
  // Graph with isolated vertices: ranks must still sum to 1.
  EdgeList el;
  el.num_vertices = 10;
  el.edges = {{0, 1, 1}, {1, 2, 1}};
  const Csr g = testing::undirected(el);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  EXPECT_NEAR(sum(r.rank), 1.0, 1e-9);
  const auto oracle = serial::pagerank(g, 0.85, 50);
  EXPECT_TRUE(testing::near_vectors(r.rank, oracle, 1e-10));
}

TEST(Pagerank, ConvergencePruningShrinksFrontier) {
  const Csr g = build_dataset("rgg-s", /*shrink=*/5);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 1e-3;  // aggressive pruning
  opts.max_iterations = 50;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  ASSERT_GE(r.summary.per_iteration.size(), 2u);
  const auto& last = r.summary.per_iteration.back();
  const auto& first = r.summary.per_iteration.front();
  EXPECT_LT(last.input_size, first.input_size);
}

TEST(Pagerank, PrunedStillCloseToExact) {
  const Csr g = build_dataset("soc-orkut-s", /*shrink=*/6);
  const auto oracle = serial::pagerank(g, 0.85, 50);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 1e-9;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  double l1 = 0.0;
  for (std::size_t v = 0; v < oracle.size(); ++v)
    l1 += std::abs(oracle[v] - r.rank[v]);
  EXPECT_LT(l1, 1e-2);  // pruning is approximate by design (Section 5.5)
}

TEST(Pagerank, HigherDegreeGetsMoreRankOnChain) {
  // On a path, interior vertices (degree 2) outrank endpoints (degree 1).
  const Csr g = testing::undirected(path_graph(8));
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  const PagerankResult r = gunrock_pagerank(dev, g, opts);
  EXPECT_GT(r.rank[3], r.rank[0]);
  EXPECT_GT(r.rank[4], r.rank[7]);
}

}  // namespace
}  // namespace grx
