// The streaming-graph contract (docs/architecture.md, "Streaming graphs"):
//
//  1. Snapshot parity, oracle-replayed: after every applied update batch,
//     a from-scratch CSR rebuilt for that epoch by an independent
//     reference model is byte-equal (offsets, columns, weights) to the
//     pinned SnapshotView's CSR, and BFS / SSSP / CC / PageRank on the
//     view match the serial oracles on the rebuilt graph — including for
//     views that straddle a compaction.
//  2. Epoch-based reclamation: a snapshot frees only after every reader
//     that could see it has released its pin; a straggler pinned at an
//     old epoch blocks reclamation of everything retired after it, and
//     the live-snapshot count collapses back to a small bound the moment
//     the straggler releases.
//  3. The serving integration: a Server over a DynamicGraph tags every
//     result with the epoch it pinned at dequeue time, serves queries
//     concurrently with apply_updates(), and never dangles — proven here
//     under tight pin/unpin churn with forced compactions and a FaultPlan
//     kStall reader wedged mid-enact on an old epoch.
//
// This suite runs under both sanitizers in CI (tsan + asan jobs): the
// pin/publish/retire/collect protocol of core/epoch.hpp must be exactly
// as race-free as the server's queue handoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/server.hpp"
#include "baselines/serial/serial.hpp"
#include "core/epoch.hpp"
#include "graph/dynamic.hpp"
#include "graph/generators.hpp"
#include "primitives/batch.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace grx {
namespace {

using namespace std::chrono_literals;

// --- reference model ---------------------------------------------------------

/// An independent from-scratch model of the mutable graph: a sorted
/// (src, dst) -> weight map, replaying the same update semantics as
/// DynamicGraph (upsert / delete, optional mirroring) with none of its
/// machinery. to_csr() emits the map in key order — exactly canonical CSR
/// order — so comparisons against snapshots are byte-level.
struct RefModel {
  VertexId n = 0;
  std::map<std::pair<VertexId, VertexId>, Weight> adj;

  static RefModel from(const Csr& g) {
    RefModel m;
    m.n = g.num_vertices();
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      for (EdgeId e = g.row_start(v); e < g.row_end(v); ++e)
        m.adj[{v, g.col_index(e)}] = g.weight(e);
    return m;
  }

  void apply_dir(VertexId s, VertexId d, Weight w, bool insert) {
    if (insert)
      adj[{s, d}] = w;
    else
      adj.erase({s, d});
  }
  void apply(const EdgeUpdate& u, bool symmetric) {
    apply_dir(u.src, u.dst, u.weight, u.insert);
    if (symmetric && u.src != u.dst)
      apply_dir(u.dst, u.src, u.weight, u.insert);
  }

  Csr to_csr() const {
    std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
    std::vector<VertexId> cols;
    std::vector<Weight> weights;
    cols.reserve(adj.size());
    weights.reserve(adj.size());
    for (const auto& [edge, w] : adj) {
      offsets[edge.first + 1]++;
      cols.push_back(edge.second);
      weights.push_back(w);
    }
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
    return Csr(n, std::move(offsets), std::move(cols), std::move(weights));
  }
};

/// A seeded mixed update batch: ~half upserts of random pairs, ~half
/// deletes biased toward edges that currently exist in `ref` (so deletes
/// actually exercise tombstones, not just the ignored path).
std::vector<EdgeUpdate> random_batch(Rng& rng, const RefModel& ref,
                                     std::size_t count) {
  std::vector<EdgeUpdate> batch;
  batch.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.next_bool(0.5) || ref.adj.empty()) {
      const auto u = static_cast<VertexId>(rng.next_below(ref.n));
      const auto v = static_cast<VertexId>(rng.next_below(ref.n));
      batch.push_back(
          EdgeUpdate::insert_edge(u, v, static_cast<Weight>(rng.next_in(1, 64))));
    } else if (rng.next_bool(0.8)) {
      auto it = ref.adj.begin();
      std::advance(it, static_cast<long>(rng.next_below(ref.adj.size())));
      batch.push_back(EdgeUpdate::remove_edge(it->first.first, it->first.second));
    } else {  // delete of a (likely) absent edge: the ignored path
      const auto u = static_cast<VertexId>(rng.next_below(ref.n));
      const auto v = static_cast<VertexId>(rng.next_below(ref.n));
      batch.push_back(EdgeUpdate::remove_edge(u, v));
    }
  }
  return batch;
}

void expect_csr_equal(const Csr& got, const Csr& want, const std::string& ctx) {
  ASSERT_EQ(got.num_vertices(), want.num_vertices()) << ctx;
  ASSERT_EQ(got.num_edges(), want.num_edges()) << ctx;
  EXPECT_TRUE(std::equal(got.row_offsets().begin(), got.row_offsets().end(),
                         want.row_offsets().begin(), want.row_offsets().end()))
      << ctx << ": row offsets differ";
  EXPECT_TRUE(std::equal(got.col_indices().begin(), got.col_indices().end(),
                         want.col_indices().begin(), want.col_indices().end()))
      << ctx << ": column indices differ";
  EXPECT_TRUE(std::equal(got.weights().begin(), got.weights().end(),
                         want.weights().begin(), want.weights().end()))
      << ctx << ": weights differ";
}

/// The per-epoch oracle check: BFS/SSSP/CC on the pinned view byte-equal
/// the serial oracles on the independently rebuilt graph; PageRank
/// (epsilon=0, fixed iterations) matches serial power iteration to 1e-10.
void expect_view_matches_oracles(const SnapshotView& view, const Csr& rebuilt,
                                 std::span<const VertexId> sources,
                                 const std::string& ctx) {
  simt::Device dev;
  Engine eng(dev, view.csr());
  for (const VertexId src : sources) {
    EXPECT_EQ(eng.bfs(src).depth, serial::bfs(rebuilt, src))
        << ctx << ": BFS from " << src;
    EXPECT_EQ(eng.sssp(src).dist, serial::dijkstra(rebuilt, src))
        << ctx << ": SSSP from " << src;
  }
  EXPECT_TRUE(grx::testing::same_partition(
      eng.cc().component, serial::connected_components(rebuilt)))
      << ctx << ": CC";
  QueryOptions pr;
  pr.epsilon = 0.0;  // no frontier pruning: exact match to power iteration
  pr.max_iterations = 20;
  EXPECT_TRUE(grx::testing::near_vectors(
      eng.pagerank(pr).rank, serial::pagerank(rebuilt, 0.85, 20), 1e-10))
      << ctx << ": PageRank";
}

// --- EpochReclaimer ----------------------------------------------------------

TEST(EpochReclaimer, PinBlocksRetireesUntilRelease) {
  EpochReclaimer<int> r(8);
  EXPECT_EQ(r.current(), 0u);
  EXPECT_EQ(r.min_pinned(), kIdleEpoch);

  auto pin = r.pin();
  EXPECT_TRUE(pin.engaged());
  EXPECT_EQ(pin.epoch(), 0u);
  EXPECT_EQ(r.min_pinned(), 0u);

  // Publish: retire the old node at the post-advance epoch.
  EXPECT_EQ(r.advance(), 1u);
  r.retire(std::make_unique<const int>(41), 1);
  EXPECT_EQ(r.retired_pending(), 1u);
  EXPECT_EQ(r.collect(), 0u) << "a pin at epoch 0 must block retire-epoch 1";

  // A reader pinned NOW (epoch 1) does not block it; only the straggler.
  auto fresh = r.pin();
  EXPECT_EQ(fresh.epoch(), 1u);
  pin.release();
  EXPECT_EQ(r.collect(), 1u);
  EXPECT_EQ(r.retired_pending(), 0u);
  fresh.release();
}

TEST(EpochReclaimer, SlotExhaustionFailsLoudly) {
  EpochReclaimer<int> r(2);
  auto a = r.pin();
  auto b = r.pin();
  EXPECT_THROW(r.pin(), CheckError);
  a.release();
  auto c = r.pin();  // a released slot is immediately reusable
  EXPECT_TRUE(c.engaged());
}

TEST(EpochReclaimer, PinIsMovableAndReleaseIdempotent) {
  EpochReclaimer<int> r(2);
  auto a = r.pin();
  auto b = std::move(a);
  EXPECT_FALSE(a.engaged());  // NOLINT(bugprone-use-after-move): probing it
  EXPECT_TRUE(b.engaged());
  EXPECT_EQ(r.min_pinned(), 0u);
  b.release();
  b.release();
  EXPECT_EQ(r.min_pinned(), kIdleEpoch);
}

// --- DynamicGraph semantics --------------------------------------------------

TEST(DynamicGraph, CanonicalizesBaseLastParallelCopyWins) {
  // Row 0 as built: 1(w5), 1(w9), 0(w3), 2(w1) — unsorted, with a
  // parallel (0,1) pair and a self-loop. Canonical: 0(w3), 1(w9), 2(w1).
  Csr messy(3, {0, 4, 4, 5}, {1, 1, 0, 2, 1}, {5, 9, 3, 1, 4});
  DynamicGraph dyn(messy);
  SnapshotView view = dyn.snapshot();
  EXPECT_EQ(view.epoch(), 0u);
  expect_csr_equal(view.csr(), Csr(3, {0, 3, 3, 4}, {0, 1, 2, 1}, {3, 9, 1, 4}),
                   "canonicalized base");
}

TEST(DynamicGraph, UnweightedBaseMaterializesUnitWeights) {
  Csr unweighted(2, {0, 1, 2}, {1, 0});
  DynamicGraph dyn(unweighted);
  SnapshotView view = dyn.snapshot();
  ASSERT_TRUE(view.csr().has_weights());
  EXPECT_EQ(view.csr().weight(0), 1u);
  // SSSP is therefore always admissible on a dynamic graph.
  simt::Device dev;
  Engine eng(dev, view.csr());
  EXPECT_EQ(eng.sssp(0).dist, serial::dijkstra(view.csr(), 0));
}

TEST(DynamicGraph, UpdateSemanticsAndCounters) {
  // 0-1, 1-2 path, symmetric, all weight 1.
  Csr base(3, {0, 1, 3, 4}, {1, 0, 2, 1}, {1, 1, 1, 1});
  DynamicGraphOptions opt;
  opt.symmetric = true;
  DynamicGraph dyn(base, opt);

  const std::vector<EdgeUpdate> batch = {
      EdgeUpdate::insert_edge(0, 2, 7),  // new edge, mirrored
      EdgeUpdate::insert_edge(0, 1, 9),  // upsert of an existing edge
      EdgeUpdate::remove_edge(1, 2),     // delete, mirrored
      EdgeUpdate::remove_edge(0, 0),     // absent: ignored
  };
  EXPECT_EQ(dyn.apply_updates(batch), 1u);
  EXPECT_EQ(dyn.epoch(), 1u);

  const DynamicGraphStats s = dyn.stats();
  EXPECT_EQ(s.batches_applied, 1u);
  EXPECT_EQ(s.edges_inserted, 2u);   // (0,2) and its mirror
  EXPECT_EQ(s.weight_updates, 2u);   // (0,1) and its mirror
  EXPECT_EQ(s.edges_removed, 2u);    // (1,2) and its mirror
  EXPECT_EQ(s.updates_ignored, 1u);  // the absent self-loop delete

  SnapshotView view = dyn.snapshot();
  expect_csr_equal(view.csr(),
                   Csr(3, {0, 2, 3, 4}, {1, 2, 0, 0}, {9, 7, 9, 7}),
                   "after one batch");

  EXPECT_THROW(dyn.apply_updates(std::vector<EdgeUpdate>{
                   EdgeUpdate::insert_edge(0, 3)}),
               CheckError);
}

TEST(DynamicGraph, SelfLoopMirrorAppliesOnce) {
  Csr base(2, {0, 1, 2}, {1, 0}, {1, 1});
  DynamicGraphOptions opt;
  opt.symmetric = true;
  DynamicGraph dyn(base, opt);
  dyn.apply_updates(std::vector<EdgeUpdate>{EdgeUpdate::insert_edge(1, 1, 5)});
  EXPECT_EQ(dyn.stats().edges_inserted, 1u);
  SnapshotView view = dyn.snapshot();
  expect_csr_equal(view.csr(), Csr(2, {0, 1, 3}, {1, 0, 1}, {1, 1, 5}),
                   "self-loop insert");
}

// --- snapshot-parity oracle replay ------------------------------------------

TEST(DynamicOracle, SnapshotParityAcrossUpdateBatches) {
  const Csr& base = grx::testing::power_law_serving_graph(8);
  DynamicGraphOptions opt;
  opt.symmetric = true;  // keep the serving graph undirected
  opt.compact_every = 3;
  DynamicGraph dyn(base, opt);
  RefModel ref = RefModel::from(dyn.snapshot().csr());

  const std::vector<VertexId> sources =
      grx::testing::scattered_sources(base, 3);
  Rng rng(2026);
  for (Epoch k = 1; k <= 9; ++k) {
    const std::vector<EdgeUpdate> batch = random_batch(rng, ref, 16);
    ASSERT_EQ(dyn.apply_updates(batch), k);
    for (const EdgeUpdate& u : batch) ref.apply(u, /*symmetric=*/true);

    // From-scratch rebuild for this epoch vs the pinned snapshot.
    const Csr rebuilt = ref.to_csr();
    SnapshotView view = dyn.snapshot();
    ASSERT_EQ(view.epoch(), k);
    const std::string ctx = "epoch " + std::to_string(k);
    expect_csr_equal(view.csr(), rebuilt, ctx);
    expect_view_matches_oracles(view, rebuilt, sources, ctx);
  }
  const DynamicGraphStats s = dyn.stats();
  EXPECT_EQ(s.batches_applied, 9u);
  EXPECT_EQ(s.compactions, 3u);  // every 3rd batch folded the log
}

TEST(DynamicOracle, PinnedViewStraddlesCompactionsUnchanged) {
  const Csr& base = grx::testing::power_law_serving_graph(8);
  DynamicGraphOptions opt;
  opt.symmetric = true;
  opt.compact_every = 2;
  DynamicGraph dyn(base, opt);
  RefModel ref = RefModel::from(dyn.snapshot().csr());
  const Csr rebuilt0 = ref.to_csr();

  // Pin epoch 0, then mutate straight through two compactions.
  SnapshotView old_view = dyn.snapshot();
  ASSERT_EQ(old_view.epoch(), 0u);

  Rng rng(77);
  RefModel moving = ref;
  for (Epoch k = 1; k <= 5; ++k) {
    const std::vector<EdgeUpdate> batch = random_batch(rng, moving, 12);
    dyn.apply_updates(batch);
    for (const EdgeUpdate& u : batch) moving.apply(u, true);
  }
  ASSERT_GE(dyn.stats().compactions, 2u);
  // The straggler pins epoch 0: nothing can be reclaimed yet.
  EXPECT_EQ(dyn.stats().live_snapshots, 6u);

  // The old view still serves its epoch, byte-exact, post-compaction.
  const std::vector<VertexId> sources =
      grx::testing::scattered_sources(base, 2);
  expect_csr_equal(old_view.csr(), rebuilt0, "epoch 0 after 2 compactions");
  expect_view_matches_oracles(old_view, rebuilt0, sources,
                              "epoch 0 after 2 compactions");

  // And the newest snapshot serves the moved-on graph.
  SnapshotView new_view = dyn.snapshot();
  ASSERT_EQ(new_view.epoch(), 5u);
  expect_csr_equal(new_view.csr(), moving.to_csr(), "epoch 5");

  // Release the straggler: everything superseded reclaims immediately —
  // the still-pinned HEAD view never blocks its own epoch.
  old_view.release();
  dyn.collect();
  EXPECT_EQ(dyn.stats().live_snapshots, 1u);
}

TEST(DynamicGraph, ExplicitCompactKeepsGraphAndEpoch) {
  const Csr& base = grx::testing::power_law_serving_graph(8);
  DynamicGraphOptions opt;
  opt.symmetric = true;
  opt.compact_every = 0;  // manual only
  DynamicGraph dyn(base, opt);
  RefModel ref = RefModel::from(dyn.snapshot().csr());
  Rng rng(5);
  const std::vector<EdgeUpdate> batch = random_batch(rng, ref, 20);
  dyn.apply_updates(batch);
  for (const EdgeUpdate& u : batch) ref.apply(u, true);

  ASSERT_GT(dyn.stats().delta_edges, 0u);
  dyn.compact();
  EXPECT_EQ(dyn.stats().compactions, 1u);
  EXPECT_EQ(dyn.stats().delta_edges, 0u);
  EXPECT_EQ(dyn.epoch(), 1u) << "compaction must not publish an epoch";
  SnapshotView view = dyn.snapshot();
  expect_csr_equal(view.csr(), ref.to_csr(), "after explicit compact");
  dyn.compact();  // empty delta: no-op
  EXPECT_EQ(dyn.stats().compactions, 1u);
}

// --- Engine::rebind ----------------------------------------------------------

TEST(EngineRebind, ServesTheNewGraphAfterRebind) {
  const Csr& base = grx::testing::power_law_serving_graph(8);
  DynamicGraphOptions opt;
  opt.symmetric = true;
  DynamicGraph dyn(base, opt);
  SnapshotView v0 = dyn.snapshot();

  simt::Device dev;
  Engine eng(dev, v0.csr());
  const VertexId src = grx::testing::scattered_sources(base, 1)[0];
  EXPECT_EQ(eng.bfs(src).depth, serial::bfs(v0.csr(), src));

  RefModel ref = RefModel::from(v0.csr());
  Rng rng(9);
  const std::vector<EdgeUpdate> batch = random_batch(rng, ref, 24);
  dyn.apply_updates(batch);
  for (const EdgeUpdate& u : batch) ref.apply(u, true);

  SnapshotView v1 = dyn.snapshot();
  eng.rebind(v1.csr());
  const Csr rebuilt = ref.to_csr();
  EXPECT_EQ(eng.bfs(src).depth, serial::bfs(rebuilt, src));
  EXPECT_EQ(eng.sssp(src).dist, serial::dijkstra(rebuilt, src));
}

TEST(EngineRebind, AutoDeltaRecomputedAfterRebind) {
  // The Engine caches sssp_auto_delta per graph shape. After a rebind to a
  // different-shape graph, a batched SSSP must run with the delta a fresh
  // enactor would derive for the *new* graph — a stale cached value would
  // silently change the near/far schedule across epochs.
  const Csr& small = grx::testing::power_law_serving_graph(9);   // below the
  // 4096-vertex batch gate: schedule off (delta 0)
  const Csr& big = grx::testing::power_law_serving_graph(12);    // gate open
  simt::Device dev;
  Engine eng(dev, small);
  const auto src_small = grx::testing::scattered_sources(small, 8);
  const auto src_big = grx::testing::scattered_sources(big, 8);

  const std::uint32_t d_small = eng.batch_sssp(src_small).delta;
  {
    simt::Device fresh;
    EXPECT_EQ(d_small, batch_sssp(fresh, small, src_small).delta);
  }
  eng.rebind(big);
  const std::uint32_t d_big = eng.batch_sssp(src_big).delta;
  {
    simt::Device fresh;
    EXPECT_EQ(d_big, batch_sssp(fresh, big, src_big).delta);
  }
  // The shapes genuinely disagree, so serving the stale delta would show.
  EXPECT_NE(d_small, d_big);
  eng.rebind(small);
  EXPECT_EQ(eng.batch_sssp(src_small).delta, d_small);
}

// --- reclamation under churn (the TSan arm) ---------------------------------

TEST(DynamicReclaim, StragglerBoundsSnapshotsOnceReleased) {
  const Csr& base = grx::testing::power_law_serving_graph(7);
  DynamicGraphOptions opt;
  opt.symmetric = true;
  opt.compact_every = 2;  // forced compactions while readers churn
  DynamicGraph dyn(base, opt);

  constexpr Epoch kBatches = 30;
  SnapshotView straggler = dyn.snapshot();  // pinned at epoch 0 throughout

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> sink{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      Rng rng(1000 + t);
      while (!done.load(std::memory_order_acquire)) {
        // Tight pin/unpin churn, with real reads of the snapshot's arrays
        // so the sanitizers see the publish/consume edges, and an
        // occasional full enact on the pinned view.
        SnapshotView v = dyn.snapshot();
        const Csr& g = v.csr();
        sink.fetch_add(g.num_edges(), std::memory_order_relaxed);
        if (g.num_edges() > 0) {
          sink.fetch_add(g.col_index(rng.next_below(g.num_edges())),
                         std::memory_order_relaxed);
        }
        if (rng.next_below(16) == 0) {
          simt::Device dev;
          Engine eng(dev, g);
          sink.fetch_add(eng.bfs(0).depth.back(), std::memory_order_relaxed);
        }
      }
    });
  }

  Rng wrng(42);
  RefModel ref = RefModel::from(straggler.csr());
  for (Epoch k = 1; k <= kBatches; ++k) {
    const std::vector<EdgeUpdate> batch = random_batch(wrng, ref, 8);
    dyn.apply_updates(batch);
    for (const EdgeUpdate& u : batch) ref.apply(u, true);
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // The epoch-0 straggler blocked every retirement: all generations live.
  DynamicGraphStats s = dyn.stats();
  EXPECT_EQ(s.snapshots_created, kBatches + 1);
  EXPECT_EQ(s.live_snapshots, kBatches + 1);
  ASSERT_GE(s.compactions, kBatches / 2 - 1);

  // Release the straggler: the count collapses to the head alone.
  straggler.release();
  EXPECT_EQ(dyn.collect(), kBatches);
  s = dyn.stats();
  EXPECT_EQ(s.live_snapshots, 1u);
  EXPECT_EQ(s.snapshots_freed, kBatches);

  // And the survivor still matches the independently replayed graph.
  SnapshotView head = dyn.snapshot();
  expect_csr_equal(head.csr(), ref.to_csr(), "head after churn");
}

// --- the serving integration -------------------------------------------------

TEST(DynamicServer, ResultsAreEpochTaggedAndOracleExact) {
  const Csr& base = grx::testing::power_law_serving_graph(8);
  DynamicGraphOptions opt;
  opt.symmetric = true;
  DynamicGraph dyn(base, opt);
  RefModel ref = RefModel::from(dyn.snapshot().csr());

  ServerOptions so;
  so.num_workers = 2;
  so.omp_threads_per_worker = 1;
  grx::testing::ThreadRestorer tr;
  Server server(dyn, so);
  EXPECT_TRUE(server.dynamic());

  const VertexId src = grx::testing::scattered_sources(base, 1)[0];
  {
    QueryResult r = server.submit_bfs(src).get();
    EXPECT_EQ(r.epoch, 0u);
    EXPECT_EQ(r.depth, serial::bfs(ref.to_csr(), src));
  }

  Rng rng(31);
  const std::vector<EdgeUpdate> batch = random_batch(rng, ref, 16);
  EXPECT_EQ(server.apply_updates(batch), 1u);
  for (const EdgeUpdate& u : batch) ref.apply(u, true);
  {
    QueryResult r = server.submit_sssp(src).get();
    EXPECT_EQ(r.epoch, 1u);
    EXPECT_EQ(r.dist, serial::dijkstra(ref.to_csr(), src));
  }

  const ServerStats s = server.stats();
  EXPECT_EQ(s.update_batches, 1u);
  EXPECT_EQ(s.updates_applied, batch.size());
  EXPECT_EQ(s.graph_epoch, 1u);
  EXPECT_GE(s.epoch_rebinds, 1u);

  server.stop();
  EXPECT_THROW(server.apply_updates(batch), CheckError);
}

TEST(DynamicServer, StaticServerRejectsMutations) {
  Server server(grx::testing::power_law_serving_graph(7), {});
  EXPECT_FALSE(server.dynamic());
  EXPECT_THROW(
      server.apply_updates(std::vector<EdgeUpdate>{EdgeUpdate::insert_edge(0, 1)}),
      CheckError);
  EXPECT_EQ(server.stats().graph_epoch, 0u);
}

TEST(DynamicServer, StalledReaderHoldsOldEpochThenReclaims) {
  // A FaultPlan kStall wedges the first enact mid-traversal while its
  // worker pins epoch 0; updates applied during the stall must all stay
  // live (the wedged reader could see them... the RETIRED ones it pinned,
  // conservatively all), then reclaim once the enact finishes.
  DynamicGraphOptions opt;
  opt.symmetric = true;
  opt.compact_every = 2;
  DynamicGraph dyn(grx::testing::deep_serving_graph(), opt);
  RefModel ref = RefModel::from(dyn.snapshot().csr());

  auto plan = std::make_shared<FaultPlan>();
  plan->script = {FaultSpec{FaultKind::kStall, 2, 100000}};  // 100 ms

  ServerOptions so;
  so.num_workers = 1;
  so.faults = plan;
  Server server(dyn, so);

  QueryTicket t = server.submit_bfs(0);
  const auto give_up = std::chrono::steady_clock::now() + 5s;
  while (server.stats().enacts < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "worker never picked up the query";
    std::this_thread::sleep_for(1ms);
  }

  // The worker holds its dequeue-time pin at epoch 0; publish 6 epochs.
  Rng rng(8);
  for (int k = 0; k < 6; ++k) {
    const std::vector<EdgeUpdate> batch = random_batch(rng, ref, 4);
    server.apply_updates(batch);
    for (const EdgeUpdate& u : batch) ref.apply(u, true);
  }

  QueryResult r = t.get();
  EXPECT_EQ(r.epoch, 0u) << "the stalled query serves its pinned epoch";

  // The worker releases its pin after execute() returns, which is
  // strictly later than the ticket resolving — reclamation is eventual,
  // so poll collect() until the straggler's snapshots drain.
  const auto reclaim_deadline = std::chrono::steady_clock::now() + 5s;
  while (true) {
    dyn.collect();
    if (dyn.stats().live_snapshots == 1) break;
    ASSERT_LT(std::chrono::steady_clock::now(), reclaim_deadline)
        << "straggler pin never released";
    std::this_thread::sleep_for(1ms);
  }
  const DynamicGraphStats s = dyn.stats();
  EXPECT_EQ(s.live_snapshots, 1u);
  EXPECT_EQ(s.snapshots_created, 7u);
  EXPECT_GE(s.compactions, 2u);

  // The head still byte-matches the independent replay.
  SnapshotView head = dyn.snapshot();
  expect_csr_equal(head.csr(), ref.to_csr(), "head after stalled straggler");
  server.stop();
}

}  // namespace
}  // namespace grx
