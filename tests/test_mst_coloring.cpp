// Tests for the Section-5.5 "under development" primitives: minimum
// spanning tree (Boruvka) and greedy graph coloring (Jones-Plassmann).
#include <gtest/gtest.h>

#include "baselines/serial/serial.hpp"
#include "graph/datasets.hpp"
#include "primitives/coloring.hpp"
#include "primitives/mst.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

std::vector<std::pair<VertexId, VertexId>> edge_pairs(const MstResult& r) {
  std::vector<std::pair<VertexId, VertexId>> out;
  for (const auto& [u, v, w] : r.edges) out.emplace_back(u, v);
  return out;
}

class MstDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MstDatasetTest, WeightMatchesKruskalAndFormsSpanningForest) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  simt::Device dev;
  const MstResult r = gunrock_mst(dev, g);
  EXPECT_EQ(r.total_weight, serial::mst_weight(g));
  EXPECT_TRUE(serial::is_spanning_forest(g, edge_pairs(r)));
  EXPECT_EQ(r.num_components,
            serial::count_components(serial::connected_components(g)));
}

INSTANTIATE_TEST_SUITE_P(Datasets, MstDatasetTest,
                         ::testing::Values("soc-orkut-s", "kron-s", "rgg-s",
                                           "roadnet-s"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Mst, PathGraphTakesAllEdges) {
  EdgeList el = path_graph(8);
  for (std::size_t i = 0; i < el.edges.size(); ++i)
    el.edges[i].weight = static_cast<Weight>(10 + i);
  BuildOptions b;
  b.symmetrize = true;
  const Csr g = build_csr(el, b);
  simt::Device dev;
  const MstResult r = gunrock_mst(dev, g);
  EXPECT_EQ(r.edges.size(), 7u);
  EXPECT_EQ(r.total_weight, 10u + 11 + 12 + 13 + 14 + 15 + 16);
}

TEST(Mst, CycleDropsHeaviestEdge) {
  EdgeList el = cycle_graph(5);
  const Weight ws[] = {3, 1, 4, 1, 5};
  for (std::size_t i = 0; i < el.edges.size(); ++i) el.edges[i].weight = ws[i];
  BuildOptions b;
  b.symmetrize = true;
  const Csr g = build_csr(el, b);
  simt::Device dev;
  const MstResult r = gunrock_mst(dev, g);
  EXPECT_EQ(r.edges.size(), 4u);
  EXPECT_EQ(r.total_weight, 3u + 1 + 4 + 1);  // drops the weight-5 edge
}

TEST(Mst, EqualWeightsStillAForest) {
  // All-equal weights is the classic Boruvka cycle trap; the edge-id
  // tie-break must keep the selection acyclic.
  EdgeList el = complete_graph(24);
  for (auto& e : el.edges) e.weight = 7;
  BuildOptions b;
  b.symmetrize = true;
  const Csr g = build_csr(el, b);
  simt::Device dev;
  const MstResult r = gunrock_mst(dev, g);
  EXPECT_EQ(r.edges.size(), 23u);
  EXPECT_EQ(r.total_weight, 23u * 7);
  EXPECT_TRUE(serial::is_spanning_forest(g, edge_pairs(r)));
}

TEST(Mst, DisconnectedGraphGivesForest) {
  EdgeList el;
  el.num_vertices = 7;  // triangle + edge + 2 isolated
  el.edges = {{0, 1, 2}, {1, 2, 3}, {2, 0, 9}, {3, 4, 5}};
  const Csr g = testing::undirected_symw(el, 1);
  simt::Device dev;
  const MstResult r = gunrock_mst(dev, g);
  EXPECT_EQ(r.num_components, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(r.total_weight, serial::mst_weight(g));
  EXPECT_TRUE(serial::is_spanning_forest(g, edge_pairs(r)));
}

TEST(Mst, RandomSweepMatchesKruskal) {
  for (std::uint64_t seed : {11ull, 22ull, 33ull, 44ull}) {
    const Csr g = testing::random_graph(512, 1500, seed);
    simt::Device dev;
    const MstResult r = gunrock_mst(dev, g);
    EXPECT_EQ(r.total_weight, serial::mst_weight(g)) << "seed " << seed;
    EXPECT_TRUE(serial::is_spanning_forest(g, edge_pairs(r)))
        << "seed " << seed;
  }
}

TEST(Mst, RequiresWeights) {
  const Csr g(2, {0, 1, 2}, {1, 0});
  simt::Device dev;
  EXPECT_THROW(gunrock_mst(dev, g), CheckError);
}

class ColoringDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ColoringDatasetTest, ProperAndBounded) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  simt::Device dev;
  const ColoringResult r = gunrock_coloring(dev, g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.color[v], kInfinity) << v;
    for (VertexId u : g.neighbors(v)) ASSERT_NE(r.color[v], r.color[u]);
  }
  EXPECT_LE(r.num_colors, g.max_degree() + 1);
}

INSTANTIATE_TEST_SUITE_P(Datasets, ColoringDatasetTest,
                         ::testing::Values("hollywood-s", "roadnet-s"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Coloring, BipartiteNeedsTwoColors) {
  // Even cycle is 2-colorable; greedy JP may use a couple more, but must
  // stay well under max-degree+1 = 3 here.
  const Csr g = testing::undirected(cycle_graph(64));
  simt::Device dev;
  const ColoringResult r = gunrock_coloring(dev, g);
  EXPECT_LE(r.num_colors, 3u);
}

TEST(Coloring, CompleteGraphNeedsAllColors) {
  const std::uint32_t k = 16;
  const Csr g = testing::undirected(complete_graph(k));
  simt::Device dev;
  const ColoringResult r = gunrock_coloring(dev, g);
  EXPECT_EQ(r.num_colors, k);
}

TEST(Coloring, IsolatedVerticesGetColorZero) {
  EdgeList el;
  el.num_vertices = 5;
  const Csr g = build_csr(el);
  simt::Device dev;
  const ColoringResult r = gunrock_coloring(dev, g);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(r.color[v], 0u);
  EXPECT_EQ(r.num_colors, 1u);
}

TEST(Coloring, DeterministicForFixedSeed) {
  const Csr g = testing::random_graph(256, 1024, 9);
  simt::Device dev;
  const ColoringResult a = gunrock_coloring(dev, g, 5);
  const ColoringResult b = gunrock_coloring(dev, g, 5);
  EXPECT_EQ(a.color, b.color);
}

TEST(Coloring, StarUsesTwoColors) {
  const Csr g = testing::undirected(star_graph(64));
  simt::Device dev;
  const ColoringResult r = gunrock_coloring(dev, g);
  EXPECT_EQ(r.num_colors, 2u);
}

}  // namespace
}  // namespace grx
