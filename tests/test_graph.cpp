#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/builder.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

TEST(Csr, BasicAccessors) {
  // 0 -> {1, 2}, 1 -> {2}, 2 -> {}
  Csr g(3, {0, 2, 3, 3}, {1, 2, 2}, {5, 6, 7});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.edge_weights(1)[0], 7u);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(Csr, ValidateRejectsBadOffsets) {
  EXPECT_THROW(Csr(2, {0, 2}, {0, 1}), CheckError);        // wrong length
  EXPECT_THROW(Csr(2, {0, 2, 1}, {0, 1}), CheckError);     // decreasing
  EXPECT_THROW(Csr(2, {0, 1, 2}, {0, 5}), CheckError);     // col out of range
  EXPECT_THROW(Csr(2, {0, 1, 2}, {0, 1}, {1}), CheckError);  // weights size
}

TEST(Csr, TransposeReversesEdges) {
  Csr g(3, {0, 2, 3, 3}, {1, 2, 2}, {5, 6, 7});
  const Csr t = transpose(g);
  EXPECT_EQ(t.num_edges(), 3u);
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.degree(2), 2u);
  // Edge 1->2 weight 7 must appear as 2's incoming from 1.
  const auto nbrs = t.neighbors(2);
  const auto ws = t.edge_weights(2);
  bool found = false;
  for (std::size_t i = 0; i < nbrs.size(); ++i)
    if (nbrs[i] == 1 && ws[i] == 7) found = true;
  EXPECT_TRUE(found);
}

TEST(Csr, DoubleTransposeIsIdentity) {
  Csr g = testing::undirected(rmat(8, 4, 123));
  const Csr tt = transpose(transpose(g));
  EXPECT_EQ(tt.row_offsets().size(), g.row_offsets().size());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = g.neighbors(v), b = tt.neighbors(v);
    std::vector<VertexId> va(a.begin(), a.end()), vb(b.begin(), b.end());
    std::sort(va.begin(), va.end());
    std::sort(vb.begin(), vb.end());
    EXPECT_EQ(va, vb) << "vertex " << v;
  }
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 1}, {0, 1, 2}, {1, 1, 3}, {2, 0, 4}};
  const Csr g = build_csr(el);
  EXPECT_EQ(g.num_edges(), 2u);  // one 0->1, one 2->0
  EXPECT_EQ(g.degree(1), 0u);    // self loop dropped
}

TEST(Builder, KeepsDuplicatesWhenAsked) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {{0, 1, 1}, {0, 1, 2}};
  BuildOptions opts;
  opts.dedup = false;
  EXPECT_EQ(build_csr(el, opts).num_edges(), 2u);
}

TEST(Builder, SymmetrizeAddsReverseEdges) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{0, 1, 9}, {1, 2, 8}};
  BuildOptions opts;
  opts.symmetrize = true;
  const Csr g = build_csr(el, opts);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
  // Weight travels with the reverse edge.
  EXPECT_EQ(g.edge_weights(1)[0], 9u);  // neighbor 0
}

TEST(Builder, SortsNeighborLists) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 3, 1}, {0, 1, 1}, {0, 2, 1}};
  const Csr g = build_csr(el);
  const auto nbrs = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EdgeList el;
  el.num_vertices = 2;
  el.edges = {{0, 5, 1}};
  EXPECT_THROW(build_csr(el), CheckError);
}

TEST(Builder, RandomWeightsInRange) {
  Csr g = testing::undirected(erdos_renyi(64, 256, 3));
  g = with_random_weights(g, 99, 1, 64);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GE(g.weight(e), 1u);
    EXPECT_LE(g.weight(e), 64u);
  }
}

TEST(Generators, RmatShape) {
  const EdgeList el = rmat(10, 8, 42);
  EXPECT_EQ(el.num_vertices, 1024u);
  EXPECT_EQ(el.edges.size(), 8192u);
  for (const Edge& e : el.edges) {
    EXPECT_LT(e.src, 1024u);
    EXPECT_LT(e.dst, 1024u);
  }
}

TEST(Generators, RmatIsDeterministic) {
  const EdgeList a = rmat(8, 4, 7), b = rmat(8, 4, 7);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Generators, RmatRejectsBadProbabilities) {
  EXPECT_THROW(rmat(8, 4, 7, 0.9, 0.9, 0.1, 0.1), CheckError);
}

TEST(Generators, RmatIsSkewed) {
  const Csr g = testing::undirected(rmat(12, 16, 5));
  const GraphStats s = compute_stats(g);
  EXPECT_GT(s.degree_skew, 16.0);  // scale-free signature
}

TEST(Generators, RggDegreeNearTarget) {
  const std::uint32_t n = 4096;
  const double r = rgg_radius_for_degree(n, 12.0);
  const Csr g = testing::undirected(random_geometric(n, r, 11));
  const GraphStats s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 12.0, 3.0);
  EXPECT_LT(s.degree_skew, 16.0);  // mesh-like
}

TEST(Generators, RggEdgesRespectRadius) {
  // Radius small enough that far-apart cells cannot connect: just verify
  // symmetry-free emission (i < j) and bounds.
  const EdgeList el = random_geometric(512, 0.05, 13);
  for (const Edge& e : el.edges) EXPECT_LT(e.src, e.dst);
}

TEST(Generators, RoadGridShape) {
  const EdgeList el = road_grid(16, 8, 0.0, 0.0, 1);
  EXPECT_EQ(el.num_vertices, 128u);
  // Full grid: 15*8 horizontal + 16*7 vertical.
  EXPECT_EQ(el.edges.size(), 15u * 8 + 16 * 7);
}

TEST(Generators, RoadGridDeletionReducesEdges) {
  const auto full = road_grid(32, 32, 0.0, 0.0, 2);
  const auto cut = road_grid(32, 32, 0.5, 0.0, 2);
  EXPECT_LT(cut.edges.size(), full.edges.size());
}

TEST(Generators, ClosedForms) {
  EXPECT_EQ(path_graph(5).edges.size(), 4u);
  EXPECT_EQ(cycle_graph(5).edges.size(), 5u);
  EXPECT_EQ(star_graph(5).edges.size(), 4u);
  EXPECT_EQ(complete_graph(5).edges.size(), 10u);
  EXPECT_EQ(binary_tree(3).num_vertices, 7u);
  EXPECT_EQ(binary_tree(3).edges.size(), 6u);
  EXPECT_EQ(two_cliques_bridge(4).edges.size(), 2u * 6 + 1);
}

TEST(Stats, PathGraphDiameter) {
  const Csr g = testing::undirected(path_graph(50));
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.pseudo_diameter, 49u);
  EXPECT_EQ(s.max_degree, 2u);
}

TEST(Stats, StarGraph) {
  const Csr g = testing::undirected(star_graph(100));
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.max_degree, 99u);
  EXPECT_EQ(s.pseudo_diameter, 2u);
  EXPECT_EQ(classify(s), "scale-free");
}

TEST(Datasets, RegistryHasSixInPaperOrder) {
  const auto& specs = datasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].paper_name, "soc-orkut");
  EXPECT_EQ(specs[5].paper_name, "roadnet_CA");
}

TEST(Datasets, BuildAllShrunk) {
  for (const auto& spec : datasets()) {
    const Csr g = build_dataset(spec.name, /*shrink=*/5);
    g.validate();
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
    EXPECT_TRUE(g.has_weights()) << spec.name;
  }
}

TEST(Datasets, WeightsAreSymmetric) {
  const Csr g = build_dataset("soc-orkut-s", /*shrink=*/6);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      if (u < v) continue;
      // find reverse
      const auto rn = g.neighbors(u);
      const auto it = std::lower_bound(rn.begin(), rn.end(), v);
      ASSERT_TRUE(it != rn.end() && *it == v);
      const auto rw = g.edge_weights(u)[static_cast<std::size_t>(
          it - rn.begin())];
      EXPECT_EQ(ws[i], rw);
    }
  }
}

TEST(Datasets, TopologyClassesMatchTable1) {
  // Scale-free analogs vs mesh analogs, as classified by degree skew.
  const std::set<std::string> scale_free = {"soc-orkut-s", "hollywood-s",
                                            "indochina-s", "kron-s"};
  for (const auto& spec : datasets()) {
    const Csr g = build_dataset(spec.name, /*shrink=*/4);
    const GraphStats s = compute_stats(g);
    if (scale_free.count(spec.name)) {
      EXPECT_EQ(classify(s), "scale-free") << spec.name;
    } else {
      EXPECT_EQ(classify(s), "mesh-like") << spec.name;
      EXPECT_GT(s.pseudo_diameter, 40u) << spec.name;
    }
  }
}

TEST(Datasets, UnknownNameThrows) {
  EXPECT_THROW(build_dataset("nope"), CheckError);
}

}  // namespace
}  // namespace grx
