#include <gtest/gtest.h>

#include <sstream>

#include "graph/mm_io.hpp"
#include "util/common.hpp"

namespace grx {
namespace {

EdgeList parse(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in);
}

TEST(MatrixMarket, ParsesGeneralInteger) {
  const auto g = parse(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment line\n"
      "3 3 2\n"
      "1 2 5\n"
      "3 1 7\n");
  EXPECT_EQ(g.num_vertices, 3u);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_EQ(g.edges[0], (Edge{0, 1, 5}));
  EXPECT_EQ(g.edges[1], (Edge{2, 0, 7}));
}

TEST(MatrixMarket, ParsesPattern) {
  const auto g = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "1 2\n");
  ASSERT_EQ(g.edges.size(), 1u);
  EXPECT_EQ(g.edges[0].weight, 1u);
}

TEST(MatrixMarket, SymmetricMirrorsEntries) {
  const auto g = parse(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  // (2,1) mirrored to (1,2); diagonal (3,3) not duplicated.
  EXPECT_EQ(g.edges.size(), 3u);
}

TEST(MatrixMarket, RealWeightsRounded) {
  const auto g = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 1\n"
      "1 2 2.7\n");
  EXPECT_EQ(g.edges[0].weight, 3u);
}

TEST(MatrixMarket, RectangularUsesMaxDimension) {
  const auto g = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 5 1\n"
      "1 5\n");
  EXPECT_EQ(g.num_vertices, 5u);
}

// --- failure injection ----------------------------------------------------

TEST(MatrixMarket, RejectsEmptyInput) {
  EXPECT_THROW(parse(""), CheckError);
}

TEST(MatrixMarket, RejectsBadBanner) {
  EXPECT_THROW(parse("%%NotMM matrix coordinate real general\n1 1 0\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n1 1\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsComplexField) {
  EXPECT_THROW(
      parse("%%MatrixMarket matrix coordinate complex general\n1 1 0\n"),
      CheckError);
}

TEST(MatrixMarket, RejectsMissingSizeLine) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "3 3 2\n"
                     "1 2\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsOutOfBoundsIndex) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "1 9\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsZeroBasedIndex) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "0 1\n"),
               CheckError);
}

TEST(MatrixMarket, RejectsGarbageEntry) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate pattern general\n"
                     "2 2 1\n"
                     "one two\n"),
               CheckError);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/file.mtx"), CheckError);
}

TEST(MatrixMarket, RoundTrip) {
  EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1, 5}, {2, 3, 9}, {3, 0, 1}};
  std::ostringstream out;
  write_matrix_market(out, el);
  std::istringstream in(out.str());
  const EdgeList back = read_matrix_market(in);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.edges, el.edges);
}

}  // namespace
}  // namespace grx
