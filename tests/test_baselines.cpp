// Every reimplemented comparison system must itself be correct: each
// baseline engine is validated against the serial oracles, so the bench
// comparisons measure performance models, not bugs.
#include <gtest/gtest.h>

#include "baselines/gas/gas.hpp"
#include "baselines/hardwired/hardwired.hpp"
#include "baselines/ligra/ligra.hpp"
#include "baselines/medusa/medusa.hpp"
#include "baselines/serial/serial.hpp"
#include "graph/datasets.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

Csr test_graph() { return build_dataset("soc-orkut-s", /*shrink=*/6); }
Csr mesh_graph() { return build_dataset("roadnet-s", /*shrink=*/5); }

// --- serial self-consistency ----------------------------------------------

TEST(SerialBaseline, DijkstraAgreesWithBellmanFord) {
  const Csr g = testing::random_graph(512, 2048, 1);
  EXPECT_EQ(serial::dijkstra(g, 0), serial::bellman_ford(g, 0));
}

TEST(SerialBaseline, BfsIsUnweightedDijkstra) {
  EdgeList el = erdos_renyi(256, 1024, 2);
  for (auto& e : el.edges) e.weight = 1;
  BuildOptions b;
  b.symmetrize = true;
  const Csr g = build_csr(el, b);
  EXPECT_EQ(serial::bfs(g, 0), serial::dijkstra(g, 0));
}

// --- Ligra engine -----------------------------------------------------------

TEST(LigraBaseline, BfsMatchesOracle) {
  const Csr g = test_graph();
  EXPECT_EQ(ligra::bfs(g, 0), serial::bfs(g, 0));
}

TEST(LigraBaseline, BfsDensePathTriggersPull) {
  // High-frontier-volume graph so the |E|/20 threshold flips to dense.
  const Csr g = testing::undirected(complete_graph(128));
  EXPECT_EQ(ligra::bfs(g, 3), serial::bfs(g, 3));
}

TEST(LigraBaseline, SsspMatchesDijkstra) {
  const Csr g = test_graph();
  EXPECT_EQ(ligra::sssp(g, 0), serial::dijkstra(g, 0));
}

TEST(LigraBaseline, BcMatchesBrandes) {
  const Csr g = testing::random_graph(256, 1024, 4);
  EXPECT_TRUE(
      testing::near_vectors(ligra::bc(g, 2), serial::brandes_bc(g, 2), 1e-6));
}

TEST(LigraBaseline, CcMatchesUnionFind) {
  const Csr g = build_dataset("kron-s", /*shrink=*/6);
  EXPECT_TRUE(testing::same_partition(ligra::connected_components(g),
                                      serial::connected_components(g)));
}

TEST(LigraBaseline, PagerankMatchesPowerIteration) {
  const Csr g = mesh_graph();
  EXPECT_TRUE(testing::near_vectors(ligra::pagerank(g, 0.85, 15),
                                    serial::pagerank(g, 0.85, 15), 1e-10));
}

// --- GAS engine -------------------------------------------------------------

class GasFlavorTest : public ::testing::TestWithParam<gas::Flavor> {};

TEST_P(GasFlavorTest, BfsMatchesOracle) {
  const Csr g = test_graph();
  simt::Device dev;
  const auto r = gas::bfs(dev, g, 0, GetParam());
  EXPECT_EQ(r.depth, serial::bfs(g, 0));
}

TEST_P(GasFlavorTest, SsspMatchesDijkstra) {
  const Csr g = test_graph();
  simt::Device dev;
  const auto r = gas::sssp(dev, g, 0, GetParam());
  EXPECT_EQ(r.dist, serial::dijkstra(g, 0));
}

TEST_P(GasFlavorTest, CcMatchesUnionFind) {
  const Csr g = build_dataset("rgg-s", /*shrink=*/6);
  simt::Device dev;
  const auto r = gas::connected_components(dev, g, GetParam());
  EXPECT_TRUE(
      testing::same_partition(r.component, serial::connected_components(g)));
}

TEST_P(GasFlavorTest, PagerankMatchesPowerIteration) {
  const Csr g = mesh_graph();
  simt::Device dev;
  const auto r = gas::pagerank(dev, g, 0.85, 15, GetParam());
  EXPECT_TRUE(
      testing::near_vectors(r.rank, serial::pagerank(g, 0.85, 15), 1e-10));
}

INSTANTIATE_TEST_SUITE_P(Flavors, GasFlavorTest,
                         ::testing::Values(gas::Flavor::kFrontier,
                                           gas::Flavor::kFullSweep),
                         [](const auto& info) {
                           return info.param == gas::Flavor::kFrontier
                                      ? "MapGraphLike"
                                      : "CuShaLike";
                         });

TEST(GasBaseline, FragmentationShowsInLaunchCount) {
  const Csr g = mesh_graph();
  simt::Device dev;
  const auto r = gas::bfs(dev, g, 0);
  // >= 3 kernels per BFS level (apply + scatter + compact) on a graph with
  // hundreds of levels: fragmentation is structural, not incidental.
  EXPECT_GE(r.summary.counters.kernel_launches,
            3ull * r.summary.iterations);
  EXPECT_GT(r.summary.iterations, 20u);
}

// --- Medusa engine ----------------------------------------------------------

TEST(MedusaBaseline, BfsMatchesOracle) {
  const Csr g = test_graph();
  simt::Device dev;
  EXPECT_EQ(medusa::bfs(dev, g, 0).depth, serial::bfs(g, 0));
}

TEST(MedusaBaseline, SsspMatchesDijkstra) {
  const Csr g = build_dataset("hollywood-s", /*shrink=*/6);
  simt::Device dev;
  EXPECT_EQ(medusa::sssp(dev, g, 0).dist, serial::dijkstra(g, 0));
}

TEST(MedusaBaseline, PagerankMatchesPowerIteration) {
  const Csr g = test_graph();
  simt::Device dev;
  const auto r = medusa::pagerank(dev, g, 0.85, 15);
  EXPECT_TRUE(
      testing::near_vectors(r.rank, serial::pagerank(g, 0.85, 15), 1e-10));
}

TEST(MedusaBaseline, MessageCountMatchesTraversedEdges) {
  const Csr g = testing::undirected(complete_graph(16));
  simt::Device dev;
  const auto r = medusa::bfs(dev, g, 0);
  // Super-step 1 sends deg(source) = 15 messages; step 2 the rest.
  EXPECT_GE(r.summary.messages_sent, g.num_edges() / 2);
}

// --- hardwired implementations ---------------------------------------------

class HardwiredDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HardwiredDatasetTest, MerrillBfs) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  simt::Device dev;
  EXPECT_EQ(hardwired::merrill_bfs(dev, g, 0).depth, serial::bfs(g, 0));
}

TEST_P(HardwiredDatasetTest, DavidsonSssp) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  simt::Device dev;
  EXPECT_EQ(hardwired::davidson_sssp(dev, g, 0).dist,
            serial::dijkstra(g, 0));
}

TEST_P(HardwiredDatasetTest, SomanCc) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/5);
  simt::Device dev;
  const auto r = hardwired::soman_cc(dev, g);
  const auto oracle = serial::connected_components(g);
  EXPECT_TRUE(testing::same_partition(r.component, oracle));
  EXPECT_EQ(r.num_components, serial::count_components(oracle));
}

TEST_P(HardwiredDatasetTest, EdgeBc) {
  const Csr g = build_dataset(GetParam(), /*shrink=*/4);
  simt::Device dev;
  EXPECT_TRUE(testing::near_vectors(hardwired::edge_bc(dev, g, 0).bc_values,
                                    serial::brandes_bc(g, 0), 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Datasets, HardwiredDatasetTest,
                         ::testing::Values("soc-orkut-s", "roadnet-s"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

TEST(Hardwired, DeltaSweepAgrees) {
  const Csr g = testing::random_graph(512, 2048, 6);
  const auto oracle = serial::dijkstra(g, 1);
  simt::Device dev;
  for (std::uint32_t delta : {4u, 32u, 512u}) {
    EXPECT_EQ(hardwired::davidson_sssp(dev, g, 1, delta).dist, oracle)
        << "delta " << delta;
  }
}

}  // namespace
}  // namespace grx
