// Determinism guarantees of the two-phase output assembler: advance and
// filter outputs are byte-identical regardless of how many host threads ran
// the kernel (per-chunk staging + scan placement, no per-thread drain
// order), and all push strategies emit the same frontier in the same order
// (accepted edges sorted by frontier position, then CSR edge index).
#include <gtest/gtest.h>
#include <omp.h>

#include <vector>

#include "core/advance.hpp"
#include "core/filter.hpp"
#include "core/priority_queue.hpp"
#include "graph/generators.hpp"
#include "primitives/batch.hpp"
#include "primitives/bfs.hpp"
#include "primitives/sssp.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

struct NullProblem {
  std::vector<std::pair<VertexId, VertexId>> edges;  // for filter_edges
  std::pair<VertexId, VertexId> edge_endpoints(std::uint32_t e) const {
    return edges[e];
  }
};

/// Stateless accept decisions: repeated runs (across thread counts and
/// strategies) see identical functor behavior, so any output difference can
/// only come from the assembly path itself.
struct StatelessFunctor {
  static bool cond_edge(VertexId, VertexId dst, EdgeId, NullProblem&) {
    return ((dst * 2654435761u) >> 29) != 0;  // deterministic ~87% accept
  }
  static void apply_edge(VertexId, VertexId, EdgeId, NullProblem&) {}
  static bool is_unvisited(VertexId v, NullProblem&) {
    return ((v * 40503u) & 3u) != 0;  // deterministic ~75% "unvisited"
  }
  static bool cond_vertex(VertexId v, NullProblem&) {
    return ((v * 2246822519u) >> 30) != 0;
  }
  static void apply_vertex(VertexId, NullProblem&) {}
};

std::vector<std::uint32_t> every_kth_vertex(const Csr& g, std::uint32_t k) {
  std::vector<std::uint32_t> out;
  for (VertexId v = 0; v < g.num_vertices(); v += k) out.push_back(v);
  return out;
}

class ThreadRestorer {
 public:
  ThreadRestorer() : saved_(omp_get_max_threads()) {}
  ~ThreadRestorer() { omp_set_num_threads(saved_); }

 private:
  int saved_;
};

std::vector<Csr> test_graphs() {
  std::vector<Csr> gs;
  gs.push_back(testing::undirected(rmat(11, 16, 5)));        // power-law
  gs.push_back(testing::undirected(erdos_renyi(2048, 16384, 9)));  // uniform
  return gs;
}

std::vector<std::uint32_t> run_advance(const Csr& g,
                                       const std::vector<std::uint32_t>& seed,
                                       AdvanceStrategy strategy,
                                       Direction dir = Direction::kPush) {
  simt::Device dev;
  NullProblem p;
  Frontier in, out;
  in.assign(seed);
  AdvanceConfig cfg;
  cfg.strategy = strategy;
  cfg.direction = dir;
  AdvanceWorkspace ws;
  advance<StatelessFunctor>(dev, g, in, out, p, cfg, ws);
  return out.items();
}

constexpr AdvanceStrategy kAllStrategies[] = {
    AdvanceStrategy::kThreadFine, AdvanceStrategy::kTwc,
    AdvanceStrategy::kLoadBalanced, AdvanceStrategy::kAuto};

TEST(Determinism, AdvanceIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (const Csr& g : test_graphs()) {
    const auto seed = every_kth_vertex(g, 3);
    for (AdvanceStrategy s : kAllStrategies) {
      omp_set_num_threads(1);
      const auto ref = run_advance(g, seed, s);
      ASSERT_FALSE(ref.empty());
      for (int threads : {4, 16}) {
        omp_set_num_threads(threads);
        EXPECT_EQ(run_advance(g, seed, s), ref)
            << to_string(s) << " with " << threads << " threads";
      }
    }
  }
}

TEST(Determinism, AdvanceIdenticalAcrossStrategies) {
  // All push strategies place accepted edges at their (frontier position,
  // edge index) rank, so the emitted frontier is identical — not just as a
  // set, but element for element.
  for (const Csr& g : test_graphs()) {
    const auto seed = every_kth_vertex(g, 3);
    const auto ref = run_advance(g, seed, AdvanceStrategy::kThreadFine);
    ASSERT_FALSE(ref.empty());
    for (AdvanceStrategy s :
         {AdvanceStrategy::kTwc, AdvanceStrategy::kLoadBalanced,
          AdvanceStrategy::kAuto}) {
      EXPECT_EQ(run_advance(g, seed, s), ref) << to_string(s);
    }
  }
}

TEST(Determinism, AdvanceLbNodeAndEdgeChunkingAgree) {
  // Force both LB mappings across the node/edge threshold boundary.
  for (const Csr& g : test_graphs()) {
    const auto seed = every_kth_vertex(g, 2);
    simt::Device dev;
    NullProblem p;
    Frontier in, out_nodes, out_edges;
    in.assign(seed);
    AdvanceConfig cfg;
    cfg.strategy = AdvanceStrategy::kLoadBalanced;
    AdvanceWorkspace ws;
    cfg.lb_node_edge_threshold = 0xffffffffu;  // always chunk by nodes
    advance<StatelessFunctor>(dev, g, in, out_nodes, p, cfg, ws);
    cfg.lb_node_edge_threshold = 0;  // always chunk by edges
    advance<StatelessFunctor>(dev, g, in, out_edges, p, cfg, ws);
    EXPECT_EQ(out_nodes.items(), out_edges.items());
  }
}

TEST(Determinism, PullAdvanceIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (const Csr& g : test_graphs()) {
    const auto seed = every_kth_vertex(g, 3);
    omp_set_num_threads(1);
    const auto ref =
        run_advance(g, seed, AdvanceStrategy::kAuto, Direction::kPull);
    ASSERT_FALSE(ref.empty());
    for (int threads : {4, 16}) {
      omp_set_num_threads(threads);
      EXPECT_EQ(run_advance(g, seed, AdvanceStrategy::kAuto, Direction::kPull),
                ref)
          << threads << " threads";
    }
  }
}

TEST(Determinism, FilterPreservesInputOrder) {
  ThreadRestorer restore;
  const Csr g = testing::undirected(rmat(11, 16, 5));
  const auto in = every_kth_vertex(g, 1);
  // Reference: a serial copy_if over the input.
  std::vector<std::uint32_t> ref;
  NullProblem p;
  for (std::uint32_t v : in)
    if (StatelessFunctor::cond_vertex(v, p)) ref.push_back(v);
  for (int threads : {1, 4, 16}) {
    omp_set_num_threads(threads);
    simt::Device dev;
    std::vector<std::uint32_t> out;
    FilterWorkspace ws;
    filter_vertices<StatelessFunctor>(dev, in, out, p, FilterConfig{}, ws);
    EXPECT_EQ(out, ref) << threads << " threads";
  }
}

TEST(Determinism, FilterEdgesPreservesInputOrder) {
  ThreadRestorer restore;
  NullProblem p;
  for (std::uint32_t e = 0; e < 4096; ++e)
    p.edges.emplace_back(e % 61, (e * 7) % 61);
  struct KeepDifferent {
    static bool cond_edge(VertexId s, VertexId d, EdgeId, NullProblem&) {
      return s != d;
    }
    static void apply_edge(VertexId, VertexId, EdgeId, NullProblem&) {}
  };
  std::vector<std::uint32_t> in(p.edges.size());
  for (std::uint32_t i = 0; i < in.size(); ++i) in[i] = i;
  std::vector<std::uint32_t> ref;
  for (std::uint32_t e : in)
    if (p.edges[e].first != p.edges[e].second) ref.push_back(e);
  for (int threads : {1, 4, 16}) {
    omp_set_num_threads(threads);
    simt::Device dev;
    std::vector<std::uint32_t> out;
    FilterWorkspace ws;
    filter_edges<KeepDifferent>(dev, in, out, p, ws);
    EXPECT_EQ(out, ref) << threads << " threads";
  }
}

TEST(Determinism, DedupFilterNeverDropsDistinctVertices) {
  // The history cull is best-effort under parallelism (racing duplicates
  // may slip through — never the reverse): every distinct vertex survives
  // at every thread count, and a serial pass with a table covering the id
  // space culls duplicates exactly.
  ThreadRestorer restore;
  std::vector<std::uint32_t> in;
  for (std::uint32_t i = 0; i < 20000; ++i) in.push_back((i * 97u) % 4096u);
  std::vector<std::uint32_t> expected(in.begin(), in.end());
  std::sort(expected.begin(), expected.end());
  expected.erase(std::unique(expected.begin(), expected.end()),
                 expected.end());
  struct PassAll {
    static bool cond_vertex(VertexId, NullProblem&) { return true; }
    static void apply_vertex(VertexId, NullProblem&) {}
  };
  FilterConfig cfg;
  cfg.dedup_heuristic = true;
  cfg.history_bits = 12;  // table covers ids [0, 4096)
  NullProblem p;
  for (int threads : {1, 4, 16}) {
    omp_set_num_threads(threads);
    simt::Device dev;
    FilterWorkspace ws;
    std::vector<std::uint32_t> out;
    const FilterStats s = filter_vertices<PassAll>(dev, in, out, p, cfg, ws);
    // Survivors + culled account for every input; nothing vanishes.
    EXPECT_EQ(out.size() + s.culled_by_history, in.size())
        << threads << " threads";
    std::sort(out.begin(), out.end());
    if (threads == 1) {
      EXPECT_EQ(out, expected);  // serial + covering table: exact cull
    } else {
      // Parallel: every distinct vertex still present at least once.
      out.erase(std::unique(out.begin(), out.end()), out.end());
      EXPECT_EQ(out, expected) << threads << " threads";
    }
  }
}

TEST(Determinism, SplitNearFarPreservesInputOrder) {
  ThreadRestorer restore;
  std::vector<std::uint32_t> items(5000);
  for (std::uint32_t i = 0; i < items.size(); ++i)
    items[i] = (i * 2654435761u) >> 16;
  auto is_near = [](std::uint32_t v) { return (v & 1u) == 0; };
  std::vector<std::uint32_t> ref_near, ref_far{777u};  // far pile appends
  for (std::uint32_t v : items)
    (is_near(v) ? ref_near : ref_far).push_back(v);
  for (int threads : {1, 4, 16}) {
    omp_set_num_threads(threads);
    simt::Device dev;
    std::vector<std::uint32_t> near, far{777u};
    split_near_far(dev, items, near, far, is_near);
    EXPECT_EQ(near, ref_near) << threads << " threads";
    EXPECT_EQ(far, ref_far) << threads << " threads";
  }
}

// --- batched traversal ------------------------------------------------------
//
// The batch engine's lane updates are commutative (OR, equal-value depth
// stores, atomicMin), so batched *results* must be byte-identical across
// host thread counts AND equal, lane for lane, to B independent
// single-query runs. B > 64 exercises the multi-word mask path.

using testing::scattered_sources;

TEST(Determinism, BatchBfsIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  // Direction-optimal (legal: test_graphs() are symmetrized), so both the
  // push advance and the batch pull step are exercised.
  BatchOptions bopts;
  bopts.direction = Direction::kOptimal;
  for (const Csr& g : test_graphs()) {
    const auto sources = scattered_sources(g, 67);
    omp_set_num_threads(1);
    simt::Device dev;
    const BatchBfsResult ref = batch_bfs(dev, g, sources, bopts);
    // Per-lane cross-check against independent single-query runs.
    BfsOptions opts;
    opts.record_predecessors = false;
    for (std::uint32_t q = 0; q < ref.num_lanes; ++q) {
      const BfsResult single = gunrock_bfs(dev, g, sources[q], opts);
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(ref.depth_at(v, q), single.depth[v])
            << "lane " << q << " vertex " << v;
    }
    for (int threads : {4, 16}) {
      omp_set_num_threads(threads);
      const BatchBfsResult run = batch_bfs(dev, g, sources, bopts);
      EXPECT_EQ(run.depth, ref.depth) << threads << " threads";
      EXPECT_EQ(run.summary.iterations, ref.summary.iterations)
          << threads << " threads";
    }
  }
}

TEST(Determinism, BatchSsspIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (const Csr& g : test_graphs()) {
    const auto sources = scattered_sources(g, 67);
    omp_set_num_threads(1);
    simt::Device dev;
    const BatchSsspResult ref = batch_sssp(dev, g, sources);
    for (std::uint32_t q = 0; q < ref.num_lanes; ++q) {
      const SsspResult single = gunrock_sssp(dev, g, sources[q]);
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(ref.dist_at(v, q), single.dist[v])
            << "lane " << q << " vertex " << v;
    }
    for (int threads : {4, 16}) {
      omp_set_num_threads(threads);
      const BatchSsspResult run = batch_sssp(dev, g, sources);
      EXPECT_EQ(run.dist, ref.dist) << threads << " threads";
    }
  }
}

TEST(Determinism, BatchBcForwardIdenticalAcrossThreadCounts) {
  // Sigma values are integer counts stored in doubles, so the atomic adds
  // commute exactly and the forward pass is byte-deterministic too.
  ThreadRestorer restore;
  const Csr g = testing::undirected(rmat(10, 16, 5));
  const auto sources = scattered_sources(g, 67);
  omp_set_num_threads(1);
  simt::Device dev;
  const BatchBcForwardResult ref = batch_bc_forward(dev, g, sources);
  for (int threads : {4, 16}) {
    omp_set_num_threads(threads);
    const BatchBcForwardResult run = batch_bc_forward(dev, g, sources);
    EXPECT_EQ(run.depth, ref.depth) << threads << " threads";
    EXPECT_EQ(run.sigma, ref.sigma) << threads << " threads";
  }
}

// --- priority-frontier SSSP --------------------------------------------------
//
// The near/far schedule adds scheduling state (cutoffs, piles, per-lane
// levels) on top of the assembler guarantees. Pile membership is a pure
// function of post-advance distances and cutoffs, and all tallies are
// commutative sums/mins, so distances, iteration counts, and the schedule
// stats themselves must be byte-identical across 1/2/8 host threads and
// across every advance strategy.

TEST(Determinism, SsspNearFarIdenticalAcrossThreadCounts) {
  ThreadRestorer restore;
  for (const Csr& g : test_graphs()) {
    SsspOptions opts;
    opts.delta = 16;  // force a fine schedule (many splits)
    omp_set_num_threads(1);
    simt::Device dev;
    const SsspResult ref = gunrock_sssp(dev, g, 3, opts);
    ASSERT_GT(ref.pq_stats.splits, 0u);
    for (int threads : {2, 8}) {
      omp_set_num_threads(threads);
      const SsspResult run = gunrock_sssp(dev, g, 3, opts);
      EXPECT_EQ(run.dist, ref.dist) << threads << " threads";
      EXPECT_EQ(run.pq_stats, ref.pq_stats) << threads << " threads";
      EXPECT_EQ(run.summary.iterations, ref.summary.iterations)
          << threads << " threads";
    }
  }
}

TEST(Determinism, SsspNearFarIdenticalAcrossStrategies) {
  for (const Csr& g : test_graphs()) {
    simt::Device dev;
    SsspOptions opts;
    opts.delta = 16;
    opts.strategy = AdvanceStrategy::kThreadFine;
    const SsspResult ref = gunrock_sssp(dev, g, 3, opts);
    for (AdvanceStrategy s :
         {AdvanceStrategy::kTwc, AdvanceStrategy::kLoadBalanced,
          AdvanceStrategy::kAuto}) {
      opts.strategy = s;
      const SsspResult run = gunrock_sssp(dev, g, 3, opts);
      EXPECT_EQ(run.dist, ref.dist) << to_string(s);
      EXPECT_EQ(run.pq_stats, ref.pq_stats) << to_string(s);
    }
  }
}

TEST(Determinism, BatchSsspNearFarIdenticalAcrossThreadCounts) {
  // B = 67 exercises the multi-word mask path through the claim+split and
  // wake kernels; per-lane stats must match cell for cell, not just the
  // distance matrix.
  ThreadRestorer restore;
  for (const Csr& g : test_graphs()) {
    const auto sources = scattered_sources(g, 67);
    BatchOptions bopts;
    bopts.delta = 16;
    omp_set_num_threads(1);
    simt::Device dev;
    const BatchSsspResult ref = batch_sssp(dev, g, sources, bopts);
    ASSERT_EQ(ref.lane_stats.size(), sources.size());
    std::uint64_t total_splits = 0;
    for (const PriorityQueueStats& s : ref.lane_stats)
      total_splits += s.splits;
    ASSERT_GT(total_splits, 0u);
    // Per-lane ground truth: every lane equals its single-query run.
    for (std::uint32_t q = 0; q < ref.num_lanes; ++q) {
      const SsspResult single = gunrock_sssp(dev, g, sources[q]);
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        ASSERT_EQ(ref.dist_at(v, q), single.dist[v])
            << "lane " << q << " vertex " << v;
    }
    for (int threads : {2, 8}) {
      omp_set_num_threads(threads);
      const BatchSsspResult run = batch_sssp(dev, g, sources, bopts);
      EXPECT_EQ(run.dist, ref.dist) << threads << " threads";
      EXPECT_EQ(run.lane_stats, ref.lane_stats) << threads << " threads";
      EXPECT_EQ(run.summary.iterations, ref.summary.iterations)
          << threads << " threads";
    }
  }
}

TEST(Determinism, BatchSsspNearFarIdenticalAcrossStrategies) {
  const Csr g = testing::undirected(rmat(11, 16, 5));
  const auto sources = scattered_sources(g, 67);
  simt::Device dev;
  BatchOptions bopts;
  bopts.delta = 16;
  bopts.strategy = AdvanceStrategy::kThreadFine;
  const BatchSsspResult ref = batch_sssp(dev, g, sources, bopts);
  for (AdvanceStrategy s :
       {AdvanceStrategy::kTwc, AdvanceStrategy::kLoadBalanced,
        AdvanceStrategy::kAuto}) {
    bopts.strategy = s;
    const BatchSsspResult run = batch_sssp(dev, g, sources, bopts);
    EXPECT_EQ(run.dist, ref.dist) << to_string(s);
    EXPECT_EQ(run.lane_stats, ref.lane_stats) << to_string(s);
    EXPECT_EQ(run.summary.iterations, ref.summary.iterations)
        << to_string(s);
  }
}

// --- vector backend axis -----------------------------------------------------
//
// The lane-word kernels (simt/vec.hpp) promise byte parity across
// backends: kScalar is the reference semantics, and every vector path must
// reproduce its frontiers, labels, per-lane schedule stats, iteration
// counts, and even the pull probe counts (edges_processed feeds the cost
// model) bit for bit. B = 67 keeps the multi-word mask path in play.

constexpr simt::VecBackend kVecRequests[] = {
    simt::VecBackend::kAvx2, simt::VecBackend::kAvx512,
    simt::VecBackend::kAuto};

TEST(Determinism, BatchResultsIdenticalAcrossVecBackends) {
  for (const Csr& g : test_graphs()) {
    const auto sources = scattered_sources(g, 67);
    simt::Device dev;
    BatchOptions sopts;
    sopts.direction = Direction::kOptimal;  // exercise the batch pull step
    sopts.delta = 16;                       // and the claim-split/wake path
    sopts.backend.vec = simt::VecBackend::kScalar;
    const BatchBfsResult bfs_ref = batch_bfs(dev, g, sources, sopts);
    const BatchSsspResult sssp_ref = batch_sssp(dev, g, sources, sopts);
    const BatchReachabilityResult reach_ref =
        batch_reachability(dev, g, sources, sopts);
    const BatchBcForwardResult bc_ref =
        batch_bc_forward(dev, g, sources, sopts);
    ASSERT_EQ(bfs_ref.backend, simt::VecBackend::kScalar);
    for (const simt::VecBackend req : kVecRequests) {
      BatchOptions o = sopts;
      o.backend.vec = req;
      const BatchBfsResult bfs = batch_bfs(dev, g, sources, o);
      EXPECT_EQ(bfs.backend, simt::resolve_backend(req)) << to_string(req);
      EXPECT_EQ(bfs.depth, bfs_ref.depth) << to_string(req);
      EXPECT_EQ(bfs.summary.iterations, bfs_ref.summary.iterations)
          << to_string(req);
      EXPECT_EQ(bfs.summary.edges_processed, bfs_ref.summary.edges_processed)
          << to_string(req);
      const BatchSsspResult sssp = batch_sssp(dev, g, sources, o);
      EXPECT_EQ(sssp.dist, sssp_ref.dist) << to_string(req);
      EXPECT_EQ(sssp.lane_stats, sssp_ref.lane_stats) << to_string(req);
      EXPECT_EQ(sssp.delta, sssp_ref.delta) << to_string(req);
      EXPECT_EQ(sssp.summary.iterations, sssp_ref.summary.iterations)
          << to_string(req);
      const BatchReachabilityResult reach =
          batch_reachability(dev, g, sources, o);
      for (VertexId v = 0; v < g.num_vertices(); ++v)
        for (std::uint32_t w = 0; w < reach.visited.words_per_vertex(); ++w)
          ASSERT_EQ(reach.visited.row(v)[w], reach_ref.visited.row(v)[w])
              << to_string(req) << " vertex " << v << " word " << w;
      const BatchBcForwardResult bc = batch_bc_forward(dev, g, sources, o);
      EXPECT_EQ(bc.depth, bc_ref.depth) << to_string(req);
      EXPECT_EQ(bc.sigma, bc_ref.sigma) << to_string(req);
    }
  }
}

TEST(Determinism, WorkspaceReuseMatchesFreshWorkspace) {
  // Pooled workspaces must be invisible to results: running a second,
  // different advance on a reused workspace gives the same output as a
  // fresh one.
  const Csr g = testing::undirected(rmat(11, 16, 5));
  const auto big = every_kth_vertex(g, 2);
  const auto small = every_kth_vertex(g, 17);
  AdvanceWorkspace reused;
  simt::Device dev;
  NullProblem p;
  AdvanceConfig cfg;
  Frontier in, out;
  in.assign(big);
  advance<StatelessFunctor>(dev, g, in, out, p, cfg, reused);
  in.assign(small);
  advance<StatelessFunctor>(dev, g, in, out, p, cfg, reused);
  EXPECT_EQ(out.items(), run_advance(g, small, AdvanceStrategy::kAuto));
}

}  // namespace
}  // namespace grx
