// Additional coverage: SALSA, enactor summaries, dataset determinism,
// engine edge cases, and operator interactions not exercised elsewhere.
#include <gtest/gtest.h>

#include "baselines/gas/gas.hpp"
#include "baselines/medusa/medusa.hpp"
#include "baselines/serial/serial.hpp"
#include "core/sample.hpp"
#include "graph/datasets.hpp"
#include "primitives/bfs.hpp"
#include "primitives/pagerank.hpp"
#include "primitives/salsa.hpp"
#include "primitives/sssp.hpp"
#include "test_common.hpp"

namespace grx {
namespace {

TEST(Salsa, BipartiteTopAuthority) {
  // Users {0,1,2} follow items {3,4}; item 3 has more followers.
  EdgeList el;
  el.num_vertices = 5;
  el.edges = {{0, 3, 1}, {1, 3, 1}, {2, 3, 1}, {2, 4, 1}};
  const Csr g = build_csr(el);
  const Csr gT = transpose(g);
  simt::Device dev;
  const SalsaResult r = gunrock_salsa(dev, g, gT);
  EXPECT_GT(r.authority[3], r.authority[4]);
  EXPECT_NEAR(r.authority[0], 0.0, 1e-12);  // users have no in-edges
  EXPECT_NEAR(r.hub[3], 0.0, 1e-12);        // items have no out-edges
}

TEST(Salsa, ScoresAreL1Distributions) {
  const Csr g = build_dataset("indochina-s", /*shrink=*/6);
  simt::Device dev;
  const SalsaResult r = gunrock_salsa(dev, g, g);
  double h = 0.0, a = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_GE(r.hub[v], 0.0);
    EXPECT_GE(r.authority[v], 0.0);
    h += r.hub[v];
    a += r.authority[v];
  }
  EXPECT_NEAR(h, 1.0, 1e-9);
  EXPECT_NEAR(a, 1.0, 1e-9);
}

TEST(Salsa, RegularBipartiteIsUniform) {
  // Complete bipartite K_{3,3}: SALSA's stationary distribution is
  // uniform on each side.
  EdgeList el;
  el.num_vertices = 6;
  for (VertexId u = 0; u < 3; ++u)
    for (VertexId v = 3; v < 6; ++v) el.edges.push_back({u, v, 1});
  const Csr g = build_csr(el);
  const Csr gT = transpose(g);
  simt::Device dev;
  const SalsaResult r = gunrock_salsa(dev, g, gT);
  for (VertexId u = 0; u < 3; ++u) EXPECT_NEAR(r.hub[u], 1.0 / 3, 1e-9);
  for (VertexId v = 3; v < 6; ++v)
    EXPECT_NEAR(r.authority[v], 1.0 / 3, 1e-9);
}

TEST(Datasets, BuildIsDeterministic) {
  const Csr a = build_dataset("kron-s", 5);
  const Csr b = build_dataset("kron-s", 5);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.col_indices().begin(), a.col_indices().end(),
                         b.col_indices().begin()));
  EXPECT_TRUE(std::equal(a.weights().begin(), a.weights().end(),
                         b.weights().begin()));
}

TEST(EnactSummary, MtepsUsesDeviceTime) {
  EnactSummary s;
  s.device_time_ms = 2.0;
  EXPECT_DOUBLE_EQ(s.mteps(4'000'000), 2000.0);
  s.device_time_ms = 0.0;
  EXPECT_DOUBLE_EQ(s.mteps(4'000'000), 0.0);
}

TEST(Bfs, PerIterationFrontierSizesAreConsistent) {
  const Csr g = build_dataset("rgg-s", /*shrink=*/6);
  simt::Device dev;
  const BfsResult r = gunrock_bfs(dev, g, 0);
  // output of iteration i == input of iteration i+1.
  for (std::size_t i = 0; i + 1 < r.summary.per_iteration.size(); ++i)
    EXPECT_EQ(r.summary.per_iteration[i].output_size,
              r.summary.per_iteration[i + 1].input_size);
  EXPECT_EQ(r.summary.per_iteration.front().input_size, 1u);
  EXPECT_EQ(r.summary.per_iteration.back().output_size, 0u);
}

TEST(Bfs, DeviceTimeAccumulatesAcrossIterations) {
  const Csr g = build_dataset("roadnet-s", /*shrink=*/5);
  simt::Device dev;
  const BfsResult r = gunrock_bfs(dev, g, 0);
  EXPECT_GT(r.summary.iterations, 10u);
  // At least one kernel launch per iteration must be accounted.
  EXPECT_GE(r.summary.counters.kernel_launches, r.summary.iterations);
}

TEST(GasEngine, FullSweepAndFrontierAgreeOnSssp) {
  const Csr g = build_dataset("rgg-s", /*shrink=*/6);
  simt::Device dev;
  const auto a = gas::sssp(dev, g, 3, gas::Flavor::kFrontier);
  const auto b = gas::sssp(dev, g, 3, gas::Flavor::kFullSweep);
  EXPECT_EQ(a.dist, b.dist);
  // The full sweep touches at least as many edges for the same answer.
  EXPECT_GE(b.summary.edges_processed, a.summary.edges_processed);
}

TEST(GasEngine, WarpEfficiencyOrdering) {
  const Csr g = build_dataset("kron-s", /*shrink=*/5);
  simt::Device dev;
  gas::bfs(dev, g, 0, gas::Flavor::kFrontier);
  // run() resets the device internally; counters reflect the last run.
  const double frontier_eff = dev.counters().warp_efficiency();
  gas::bfs(dev, g, 0, gas::Flavor::kFullSweep);
  const double sweep_eff = dev.counters().warp_efficiency();
  EXPECT_GT(frontier_eff, sweep_eff);
}

TEST(MedusaEngine, HandlesSingleVertexComponentSource) {
  EdgeList el;
  el.num_vertices = 3;
  el.edges = {{1, 2, 1}};  // vertex 0 isolated
  const Csr g = testing::undirected(el);
  simt::Device dev;
  const auto r = medusa::bfs(dev, g, 0);
  EXPECT_EQ(r.depth[0], 0u);
  EXPECT_EQ(r.depth[1], kInfinity);
  EXPECT_EQ(r.summary.messages_sent, 0u);
}

TEST(MedusaEngine, RejectsAsymmetricGraphs) {
  // Directed-only edge: the reverse-slot layout requires symmetry.
  Csr g(2, {0, 1, 1}, {1});
  simt::Device dev;
  EXPECT_THROW(medusa::bfs(dev, g, 0), CheckError);
}

TEST(Sssp, AdaptiveDeltaPolicySkipsQueueOnMeshes) {
  const Csr g = build_dataset("roadnet-s", /*shrink=*/4);
  simt::Device dev;
  SsspOptions adaptive;  // auto delta
  const auto a = gunrock_sssp(dev, g, 0, adaptive);
  SsspOptions plain;
  plain.use_priority_queue = false;
  const auto b = gunrock_sssp(dev, g, 0, plain);
  // Policy disables splitting on low-degree meshes: identical work.
  EXPECT_EQ(a.summary.edges_processed, b.summary.edges_processed);
  EXPECT_EQ(a.dist, b.dist);
}

TEST(Pagerank, SummaryEdgesMatchIterationsTimesEdges) {
  const Csr g = build_dataset("hollywood-s", /*shrink=*/6);
  simt::Device dev;
  PagerankOptions opts;
  opts.epsilon = 0.0;
  opts.max_iterations = 5;
  const auto r = gunrock_pagerank(dev, g, opts);
  EXPECT_EQ(r.summary.iterations, 5u);
  EXPECT_EQ(r.summary.edges_processed, 5 * g.num_edges());
}

TEST(Sample, ComposesWithBfsForSeededSolution) {
  // Section-7 use case: sample a frontier to get a rough solution.
  const Csr g = build_dataset("rgg-s", /*shrink=*/6);
  simt::Device dev;
  // Full BFS from vertex 0 for reference.
  const auto full = gunrock_bfs(dev, g, 0);
  // "Seeded" variant: sample the level-2 frontier and keep traversing —
  // depths found can only be >= the exact ones.
  Frontier f;
  f.assign_single(0);
  // (exercise: sample operator on a live frontier)
  Frontier sampled;
  SampleConfig cfg;
  cfg.fraction = 0.5;
  frontier_sample(dev, f, sampled, cfg);
  EXPECT_EQ(sampled.size(), 1u);  // min_keep guarantees progress
  (void)full;
}

}  // namespace
}  // namespace grx
