// Shared helpers for the grx test suite.
#pragma once

#include <gtest/gtest.h>
#include <omp.h>

// Allocation-counting fixture; a TU that defines GRX_ALLOC_PROBE_IMPLEMENT
// before including this header owns the binary's operator new replacement.
#include "alloc_probe.hpp"

#include <map>
#include <mutex>
#include <vector>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "util/common.hpp"
#include "util/rng.hpp"

namespace grx::testing {

/// Restores the ambient OpenMP width on scope exit — for tests that pin
/// kernels serial (byte-exact FP oracles) without leaking the setting
/// into later tests in the same binary.
struct ThreadRestorer {
  int saved_ = omp_get_max_threads();
  ~ThreadRestorer() { omp_set_num_threads(saved_); }
};

/// Builds an undirected weighted CSR from a generator edge list.
inline Csr undirected(const EdgeList& el, std::uint64_t weight_seed = 7) {
  BuildOptions opts;
  opts.symmetrize = true;
  Csr g = build_csr(el, opts);
  return with_random_weights(g, weight_seed);
}

/// Builds an undirected CSR with *symmetric* weights (w(u,v) == w(v,u)),
/// required for SSSP correctness checks on undirected graphs.
inline Csr undirected_symw(EdgeList el, std::uint64_t weight_seed = 7) {
  Rng rng(weight_seed);
  for (Edge& e : el.edges) e.weight = static_cast<Weight>(1 + rng.next_below(64));
  BuildOptions opts;
  opts.symmetrize = true;
  return build_csr(el, opts);
}

/// The canonical power-law serving fixture shared by the server-layer
/// suites (test_server at scale 10, test_faults at scale 9, test_dynamic):
/// an undirected RMAT with symmetric weights, seed 2016, edge factor 8.
/// Cached per scale so repeated tests share one build.
inline const Csr& power_law_serving_graph(std::uint32_t scale = 10) {
  static std::mutex mu;
  static std::map<std::uint32_t, Csr> cache;  // node-stable references
  std::lock_guard<std::mutex> lk(mu);
  auto it = cache.find(scale);
  if (it == cache.end())
    it = cache.emplace(scale, undirected_symw(rmat(scale, 8, 2016))).first;
  return it->second;
}

/// A graph with a deep BFS frontier (many rounds), so per-round hooks
/// (fault injection, mid-enact stalls) reliably fire.
inline const Csr& deep_serving_graph() {
  static const Csr g = undirected_symw(road_grid(16, 16, 0.0, 0.0, 2016));
  return g;
}

/// A deterministic connected-ish random graph for property tests.
inline Csr random_graph(std::uint32_t n, std::uint64_t m,
                        std::uint64_t seed) {
  EdgeList el = erdos_renyi(n, m, seed);
  // Thread a path through all vertices so the graph is connected: property
  // assertions over reachability then cover every vertex.
  for (std::uint32_t i = 0; i + 1 < n; ++i)
    el.edges.push_back(Edge{i, i + 1, 1});
  return undirected_symw(std::move(el), seed ^ 0x5eed);
}

/// Csr-taking convenience over the shared source picker
/// (grx::scattered_sources in graph/generators.hpp).
inline std::vector<VertexId> scattered_sources(const Csr& g,
                                               std::uint32_t count) {
  return grx::scattered_sources(g.num_vertices(), count);
}

/// True iff two component labelings induce the same partition.
inline ::testing::AssertionResult same_partition(
    const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "label vector sizes differ";
  std::map<VertexId, VertexId> a2b;
  std::map<VertexId, VertexId> b2a;
  for (std::size_t v = 0; v < a.size(); ++v) {
    auto [ia, oka] = a2b.emplace(a[v], b[v]);
    if (!oka && ia->second != b[v])
      return ::testing::AssertionFailure()
             << "label " << a[v] << " maps to both " << ia->second << " and "
             << b[v] << " (vertex " << v << ")";
    auto [ib, okb] = b2a.emplace(b[v], a[v]);
    if (!okb && ib->second != a[v])
      return ::testing::AssertionFailure()
             << "label " << b[v] << " maps to both " << ib->second << " and "
             << a[v] << " (vertex " << v << ")";
  }
  return ::testing::AssertionSuccess();
}

/// Elementwise comparison with an absolute tolerance.
inline ::testing::AssertionResult near_vectors(const std::vector<double>& a,
                                               const std::vector<double>& b,
                                               double tol) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "sizes differ";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol)
      return ::testing::AssertionFailure()
             << "index " << i << ": " << a[i] << " vs " << b[i]
             << " (tol " << tol << ")";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace grx::testing
