// Cross-primitive oracle/fuzz harness: seeded randomized graphs across the
// topology classes plus deliberately degenerate shapes (disconnected
// pieces, self-loops, duplicate parallel edges, zero-degree vertices, a
// single-vertex graph), with single-query AND batched BFS/SSSP checked
// cell-for-cell against the serial baselines (src/baselines/serial) —
// every lane of every batch. The engines under test share no code with
// the oracles, so any disagreement localizes a real traversal bug.
//
// Everything is seed-stable (util/rng.hpp): a failure reproduces
// bit-for-bit from the case name printed by the assertion message.
#include <gtest/gtest.h>

#include <chrono>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/server.hpp"
#include "baselines/serial/serial.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "primitives/batch.hpp"
#include "primitives/bfs.hpp"
#include "primitives/sssp.hpp"
#include "test_common.hpp"
#include "util/rng.hpp"

namespace grx {
namespace {

struct FuzzCase {
  std::string name;
  Csr g;
  bool symmetric = false;  ///< pull / direction-optimal traversal legal
};

/// Uniform random weights on the edge list (not the CSR), so degenerate
/// builds that keep parallel edges give each copy its own weight.
EdgeList weighted(EdgeList el, Rng& rng) {
  for (Edge& e : el.edges)
    e.weight = static_cast<Weight>(rng.next_in(1, 64));
  return el;
}

/// Random graph with forced self-loops, duplicate parallel edges (kept:
/// dedup off), and a tail of zero-degree vertices; built directed so the
/// exact hostile shape reaches the engines unnormalized.
FuzzCase degenerate_case(std::uint64_t seed) {
  Rng rng(seed * 2654435761u + 13);
  EdgeList el;
  const VertexId core = 240;
  el.num_vertices = core + 24;  // 24 trailing zero-degree vertices
  for (std::uint32_t i = 0; i < 700; ++i)
    el.edges.push_back(Edge{static_cast<VertexId>(rng.next_below(core)),
                            static_cast<VertexId>(rng.next_below(core)), 1});
  for (std::uint32_t i = 0; i < 24; ++i)  // self-loops (never improve)
    el.edges.push_back(
        Edge{static_cast<VertexId>(rng.next_below(core)),
             static_cast<VertexId>(rng.next_below(core)), 1});
  for (std::uint32_t i = 0; i < 24; ++i) {
    const VertexId v = static_cast<VertexId>(rng.next_below(core));
    el.edges.push_back(Edge{v, v, 1});
  }
  // Duplicate a slice of edges verbatim; weights assigned afterwards so
  // the copies become *parallel edges of different weights*.
  for (std::uint32_t i = 0; i < 60; ++i) el.edges.push_back(el.edges[i]);
  el = weighted(std::move(el), rng);
  BuildOptions bo;
  bo.remove_self_loops = false;
  bo.dedup = false;
  return {"degenerate/" + std::to_string(seed), build_csr(el, bo), false};
}

FuzzCase disconnected_case(std::uint64_t seed) {
  Rng rng(seed ^ 0xd15c0u);
  // Sparse Erdos-Renyi: many components and isolated vertices. Symmetrized
  // so the batch pull path can run on it too.
  EdgeList el = weighted(erdos_renyi(700, 420, seed), rng);
  BuildOptions bo;
  bo.symmetrize = true;
  return {"disconnected/" + std::to_string(seed), build_csr(el, bo), true};
}

FuzzCase power_law_case(std::uint64_t seed) {
  Rng rng(seed ^ 0x9e37u);
  EdgeList el = weighted(rmat(8, 8, seed), rng);
  BuildOptions bo;
  bo.symmetrize = true;
  return {"power-law/" + std::to_string(seed), build_csr(el, bo), true};
}

FuzzCase grid_case(std::uint64_t seed) {
  Rng rng(seed ^ 0x6216du);
  EdgeList el = weighted(road_grid(24, 18, 0.25, 0.02, seed), rng);
  BuildOptions bo;
  bo.symmetrize = true;
  return {"grid/" + std::to_string(seed), build_csr(el, bo), true};
}

FuzzCase single_vertex_case() {
  EdgeList el;
  el.num_vertices = 1;
  return {"single-vertex", build_csr(el, BuildOptions{}), true};
}

std::vector<FuzzCase> fuzz_cases(std::uint64_t seed) {
  std::vector<FuzzCase> cases;
  cases.push_back(power_law_case(seed));
  cases.push_back(grid_case(seed));
  cases.push_back(disconnected_case(seed));
  cases.push_back(degenerate_case(seed));
  if (seed == 1) cases.push_back(single_vertex_case());
  return cases;
}

constexpr std::uint64_t kSeeds[] = {1, 7, 23};

/// Sources scattered over the graph, with a duplicate pair and (when the
/// graph is big enough) a likely-isolated / fringe vertex included.
std::vector<VertexId> fuzz_sources(const Csr& g, std::uint32_t count) {
  std::vector<VertexId> src = grx::scattered_sources(
      g.num_vertices(), std::min<std::uint32_t>(count, g.num_vertices()));
  if (src.size() >= 2) {
    src[src.size() - 1] = src[0];              // duplicate source
    src[src.size() / 2] = g.num_vertices() - 1;  // fringe (often degree 0)
  }
  return src;
}

// --- single-query sweeps -----------------------------------------------------

TEST(OracleFuzz, SingleQueryBfsMatchesSerial) {
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      simt::Device dev;
      for (const VertexId s : fuzz_sources(c.g, 4)) {
        const auto oracle = serial::bfs(c.g, s);
        BfsOptions opts;
        opts.record_predecessors = false;
        const BfsResult push = gunrock_bfs(dev, c.g, s, opts);
        ASSERT_EQ(push.depth, oracle) << c.name << " src " << s << " push";
        if (c.symmetric) {
          opts.direction = Direction::kOptimal;
          opts.idempotent = true;
          const BfsResult opt = gunrock_bfs(dev, c.g, s, opts);
          ASSERT_EQ(opt.depth, oracle) << c.name << " src " << s << " opt";
        }
      }
    }
  }
}

TEST(OracleFuzz, SingleQuerySsspMatchesDijkstra) {
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      simt::Device dev;
      for (const VertexId s : fuzz_sources(c.g, 3)) {
        const auto oracle = serial::dijkstra(c.g, s);
        // Auto-delta, forced near/far, and plain Bellman-Ford frontier
        // must all land on the oracle distances.
        SsspOptions auto_pq;
        SsspOptions forced;
        forced.delta = 16;
        SsspOptions off;
        off.use_priority_queue = false;
        for (const SsspOptions& o : {auto_pq, forced, off}) {
          const SsspResult r = gunrock_sssp(dev, c.g, s, o);
          ASSERT_EQ(r.dist, oracle)
              << c.name << " src " << s << " delta " << o.delta
              << (o.use_priority_queue ? " pq" : " plain");
        }
      }
    }
  }
}

TEST(OracleFuzz, SerialBaselinesAgreeWithEachOther) {
  // Oracle sanity: Dijkstra vs Bellman-Ford on the hostile shapes. If the
  // oracles themselves disagreed, every assertion above would be suspect.
  for (const std::uint64_t seed : kSeeds) {
    const FuzzCase c = degenerate_case(seed);
    for (const VertexId s : fuzz_sources(c.g, 2))
      ASSERT_EQ(serial::dijkstra(c.g, s), serial::bellman_ford(c.g, s))
          << c.name << " src " << s;
  }
}

// --- batched sweeps ----------------------------------------------------------

TEST(OracleFuzz, BatchedBfsMatchesSerialEveryLane) {
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      const auto sources = fuzz_sources(c.g, 9);
      simt::Device dev;
      std::vector<BatchBfsResult> runs;
      // Backend axis: the auto-resolved vector path and the forced-scalar
      // reference must both land on the oracle (and hence on each other).
      for (const simt::VecBackend vb :
           {simt::VecBackend::kAuto, simt::VecBackend::kScalar}) {
        BatchOptions bopts;
        bopts.backend.vec = vb;
        runs.push_back(batch_bfs(dev, c.g, sources, bopts));  // push
        if (c.symmetric) {
          bopts.direction = Direction::kOptimal;
          runs.push_back(batch_bfs(dev, c.g, sources, bopts));
        }
      }
      for (std::uint32_t q = 0; q < sources.size(); ++q) {
        const auto oracle = serial::bfs(c.g, sources[q]);
        for (const BatchBfsResult& run : runs)
          for (VertexId v = 0; v < c.g.num_vertices(); ++v)
            ASSERT_EQ(run.depth_at(v, q), oracle[v])
                << c.name << " lane " << q << " vertex " << v;
      }
    }
  }
}

TEST(OracleFuzz, BatchedSsspMatchesDijkstraEveryLane) {
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      const auto sources = fuzz_sources(c.g, 9);
      simt::Device dev;
      BatchOptions auto_pq;           // auto sizing (off on tiny graphs)
      BatchOptions forced;            // per-lane schedule exercised
      forced.delta = 16;
      BatchOptions off;               // Bellman-Ford baseline path
      off.use_priority_queue = false;
      // Scalar-forced near/far arm: the vector and reference lane kernels
      // sweep the same hostile shapes.
      BatchOptions forced_scalar = forced;
      forced_scalar.backend.vec = simt::VecBackend::kScalar;
      for (const BatchOptions& o : {auto_pq, forced, off, forced_scalar}) {
        const BatchSsspResult run = batch_sssp(dev, c.g, sources, o);
        for (std::uint32_t q = 0; q < sources.size(); ++q) {
          const auto oracle = serial::dijkstra(c.g, sources[q]);
          for (VertexId v = 0; v < c.g.num_vertices(); ++v)
            ASSERT_EQ(run.dist_at(v, q), oracle[v])
                << c.name << " lane " << q << " vertex " << v << " delta "
                << run.delta << " backend " << to_string(run.backend);
        }
      }
    }
  }
}

// --- concurrent serving sweep ------------------------------------------------

TEST(OracleFuzz, ConcurrentServerMatchesSerialOracles) {
  // A random BFS/SSSP mix submitted from 4 client threads to a grx::Server
  // over every fuzz topology — coalescer on, so hostile shapes (self-loops,
  // parallel edges of distinct weights, zero-degree fringes, disconnected
  // pieces) flow through queue, lane fusion, and demux under real thread
  // interleaving. Every served vector must equal the serial baselines,
  // exactly as in the single-threaded sweeps above. Seed-stable: clients
  // draw their query streams from per-thread seeded Rngs.
  const std::uint64_t seed = 11;
  for (const FuzzCase& c : fuzz_cases(seed)) {
    ServerOptions so;
    so.num_workers = 2;
    so.coalesce_window_us = 500;
    Server server(c.g, so);

    constexpr std::uint32_t kThreads = 4, kPerThread = 4;
    struct Issued {
      QueryRequest req;
      QueryTicket ticket;
    };
    std::vector<std::vector<Issued>> issued(kThreads);
    std::vector<std::thread> clients;
    for (std::uint32_t t = 0; t < kThreads; ++t) {
      clients.emplace_back([&, t] {
        Rng rng(seed * 131 + t);
        for (std::uint32_t i = 0; i < kPerThread; ++i) {
          QueryRequest req;
          req.kind = rng.next_below(2) ? QueryKind::kSssp : QueryKind::kBfs;
          req.source =
              static_cast<VertexId>(rng.next_below(c.g.num_vertices()));
          issued[t].push_back({req, server.submit(req)});
        }
      });
    }
    for (std::thread& t : clients) t.join();

    for (std::uint32_t t = 0; t < kThreads; ++t)
      for (Issued& q : issued[t]) {
        const QueryResult r = q.ticket.get();
        if (q.req.kind == QueryKind::kBfs)
          ASSERT_EQ(r.depth, serial::bfs(c.g, q.req.source))
              << c.name << " client " << t << " src " << q.req.source;
        else
          ASSERT_EQ(r.dist, serial::dijkstra(c.g, q.req.source))
              << c.name << " client " << t << " src " << q.req.source;
      }
  }
}

TEST(OracleFuzz, FaultSweepEveryTicketResolvesAndSurvivorsStayExact) {
  // The robustness closure of the sweep above: a seeded random FaultPlan
  // (allocation failures, foreign throws, stalls, forced cancels, worker
  // crashes) runs against every hostile topology while clients mix tight
  // deadlines and mid-flight cancellations into the stream. Invariants,
  // regardless of which faults land where:
  //   1. liveness — every ticket resolves (value or typed QueryError);
  //   2. exactness — every SURVIVING query byte-matches the serial
  //      oracles (a fault may kill a query, never corrupt another);
  //   3. accounting — submitted == served + shed + cancelled
  //      + deadline_exceeded + worker_failures after the drain.
  // CI runs this under ASan and TSan: the failure paths must also be
  // leak- and race-free.
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      auto plan = std::make_shared<FaultPlan>();
      plan->seed = seed * 1000003u;
      plan->p_alloc = 0.08;
      plan->p_throw = 0.08;
      plan->p_stall = 0.10;
      plan->p_cancel = 0.12;
      plan->p_crash = 0.08;
      plan->stall_us = 500;
      ServerOptions so;
      so.num_workers = 2;
      so.coalesce_window_us = 200;
      so.max_queue = 8;
      so.admission = AdmissionPolicy::kBlock;  // back-pressure, no rejects
      so.faults = plan;
      Server server(c.g, so);

      constexpr std::uint32_t kThreads = 3, kPerThread = 6;
      struct Issued {
        QueryRequest req;
        QueryTicket ticket;
        CancelToken handle;
      };
      std::vector<std::vector<Issued>> issued(kThreads);
      std::vector<std::thread> clients;
      for (std::uint32_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
          Rng rng(seed * 977 + t);
          for (std::uint32_t i = 0; i < kPerThread; ++i) {
            QueryRequest req;
            const std::uint64_t k = rng.next_below(3);
            req.kind = k == 0   ? QueryKind::kBfs
                       : k == 1 ? QueryKind::kSssp
                                : QueryKind::kReachability;
            req.source =
                static_cast<VertexId>(rng.next_below(c.g.num_vertices()));
            if (rng.next_below(4) == 0) req.deadline_us = 2000;  // tight
            CancelToken handle;
            if (rng.next_below(4) == 0) {
              handle = CancelToken::make();
              req.cancel = handle;
            }
            Issued q{req, server.submit(req), handle};
            // Half the client tokens trip right after submission, racing
            // admission, the coalesce window, and the enact itself.
            if (q.handle.valid() && rng.next_bool(0.5)) q.handle.cancel();
            issued[t].push_back(std::move(q));
          }
        });
      }
      for (std::thread& th : clients) th.join();

      for (std::uint32_t t = 0; t < kThreads; ++t)
        for (Issued& q : issued[t]) {
          ASSERT_TRUE(q.ticket.wait_for(std::chrono::seconds(30)))
              << c.name << " ticket never resolved";
          try {
            const QueryResult r = q.ticket.get();
            const auto depth = serial::bfs(c.g, q.req.source);
            if (q.req.kind == QueryKind::kBfs) {
              ASSERT_EQ(r.depth, depth)
                  << c.name << " survivor bfs src " << q.req.source;
            } else if (q.req.kind == QueryKind::kSssp) {
              ASSERT_EQ(r.dist, serial::dijkstra(c.g, q.req.source))
                  << c.name << " survivor sssp src " << q.req.source;
            } else {
              ASSERT_EQ(r.reachable.size(), depth.size());
              for (VertexId v = 0; v < c.g.num_vertices(); ++v)
                ASSERT_EQ(r.reachable[v] != 0, depth[v] != kInfinity)
                    << c.name << " survivor reach src " << q.req.source
                    << " v " << v;
            }
          } catch (const QueryError&) {
            // Cancelled / DeadlineExceeded / WorkerFailed: typed, expected.
          }
        }

      server.stop();
      const ServerStats s = server.stats();
      EXPECT_EQ(s.queries_submitted, kThreads * kPerThread) << c.name;
      EXPECT_EQ(s.queries_submitted,
                s.queries_served + s.shed + s.cancelled + s.deadline_exceeded +
                    s.worker_failures)
          << c.name << " accounting identity broken";
    }
  }
}

TEST(OracleFuzz, ConcurrentMutationEveryEpochMatchesItsOracle) {
  // The streaming-graph closure of the serving sweep: a seeded writer
  // thread pushes random insert/delete batches through Server::
  // apply_updates while 4 client threads fire a BFS/SSSP/reachability mix
  // at the same server, over every hostile topology. The writer also
  // replays each batch into an independent edge-map model and records the
  // from-scratch CSR for every epoch it publishes. Invariants:
  //   1. liveness — every ticket resolves (no faults: with a value);
  //   2. per-epoch exactness — each result byte-matches the serial oracle
  //      evaluated on the recorded graph for the epoch the query PINNED
  //      (r.epoch), not the newest one — a query racing the writer is
  //      exact for its snapshot or it is wrong;
  //   3. reclamation — after stop() + collect(), exactly the head snapshot
  //      is live and every other generation was freed (leak counter); no
  //      snapshot was reclaimed while pinned (ASan/TSan would flag the
  //      dangling read in CI, where this test runs under both).
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      if (c.g.num_vertices() < 2) continue;  // nothing to mutate
      DynamicGraphOptions dopt;
      dopt.symmetric = c.symmetric;
      dopt.compact_every = 3;  // compactions land mid-stream
      DynamicGraph dyn(c.g, dopt);

      ServerOptions so;
      so.num_workers = 2;
      so.coalesce_window_us = 300;
      Server server(dyn, so);

      constexpr Epoch kBatches = 12;
      constexpr std::uint32_t kThreads = 4, kPerThread = 6;

      // Per-epoch oracle graphs, filled by the writer as it publishes.
      // Clients only carry epochs out via tickets; verification reads this
      // after every thread has joined.
      std::vector<Csr> epoch_graphs(kBatches + 1);
      {
        SnapshotView v0 = dyn.snapshot();
        epoch_graphs[0] = v0.csr();
      }

      std::thread writer([&] {
        // Independent replay model: (src, dst) -> weight, mirroring the
        // DynamicGraph update semantics (upsert / delete / optional
        // symmetric mirroring) on top of the canonical epoch-0 snapshot.
        std::map<std::pair<VertexId, VertexId>, Weight> adj;
        const Csr& g0 = epoch_graphs[0];
        for (VertexId v = 0; v < g0.num_vertices(); ++v)
          for (EdgeId e = g0.row_start(v); e < g0.row_end(v); ++e)
            adj[{v, g0.col_index(e)}] = g0.weight(e);
        const auto apply_dir = [&](VertexId s, VertexId d, Weight w,
                                   bool ins) {
          if (ins)
            adj[{s, d}] = w;
          else
            adj.erase({s, d});
        };

        Rng rng(seed * 6151 + 2016);
        const VertexId n = c.g.num_vertices();
        for (Epoch k = 1; k <= kBatches; ++k) {
          std::vector<EdgeUpdate> batch;
          for (std::uint32_t i = 0; i < 12; ++i) {
            if (rng.next_bool(0.55) || adj.empty()) {
              batch.push_back(EdgeUpdate::insert_edge(
                  static_cast<VertexId>(rng.next_below(n)),
                  static_cast<VertexId>(rng.next_below(n)),
                  static_cast<Weight>(rng.next_in(1, 64))));
            } else {
              auto it = adj.begin();
              std::advance(it,
                           static_cast<long>(rng.next_below(adj.size())));
              batch.push_back(
                  EdgeUpdate::remove_edge(it->first.first, it->first.second));
            }
          }
          ASSERT_EQ(server.apply_updates(batch), k) << c.name;
          for (const EdgeUpdate& u : batch) {
            apply_dir(u.src, u.dst, u.weight, u.insert);
            if (dopt.symmetric && u.src != u.dst)
              apply_dir(u.dst, u.src, u.weight, u.insert);
          }
          // Record this epoch's from-scratch CSR (map order == CSR order).
          std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
          std::vector<VertexId> cols;
          std::vector<Weight> weights;
          for (const auto& [edge, w] : adj) {
            offsets[edge.first + 1]++;
            cols.push_back(edge.second);
            weights.push_back(w);
          }
          for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
          epoch_graphs[k] =
              Csr(n, std::move(offsets), std::move(cols), std::move(weights));
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
      });

      struct Issued {
        QueryRequest req;
        QueryTicket ticket;
      };
      std::vector<std::vector<Issued>> issued(kThreads);
      std::vector<std::thread> clients;
      for (std::uint32_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
          Rng rng(seed * 443 + t);
          for (std::uint32_t i = 0; i < kPerThread; ++i) {
            QueryRequest req;
            const std::uint64_t k = rng.next_below(3);
            req.kind = k == 0   ? QueryKind::kBfs
                       : k == 1 ? QueryKind::kSssp
                                : QueryKind::kReachability;
            req.source =
                static_cast<VertexId>(rng.next_below(c.g.num_vertices()));
            issued[t].push_back({req, server.submit(req)});
            std::this_thread::sleep_for(std::chrono::microseconds(150));
          }
        });
      }
      for (std::thread& th : clients) th.join();
      writer.join();

      for (std::uint32_t t = 0; t < kThreads; ++t)
        for (Issued& q : issued[t]) {
          ASSERT_TRUE(q.ticket.wait_for(std::chrono::seconds(30)))
              << c.name << " ticket never resolved";
          const QueryResult r = q.ticket.get();
          ASSERT_LE(r.epoch, kBatches) << c.name;
          const Csr& at_epoch = epoch_graphs[r.epoch];
          const auto depth = serial::bfs(at_epoch, q.req.source);
          if (q.req.kind == QueryKind::kBfs) {
            ASSERT_EQ(r.depth, depth) << c.name << " epoch " << r.epoch
                                      << " src " << q.req.source;
          } else if (q.req.kind == QueryKind::kSssp) {
            ASSERT_EQ(r.dist, serial::dijkstra(at_epoch, q.req.source))
                << c.name << " epoch " << r.epoch << " src " << q.req.source;
          } else {
            ASSERT_EQ(r.reachable.size(), depth.size()) << c.name;
            for (VertexId v = 0; v < at_epoch.num_vertices(); ++v)
              ASSERT_EQ(r.reachable[v] != 0, depth[v] != kInfinity)
                  << c.name << " epoch " << r.epoch << " src "
                  << q.req.source << " v " << v;
          }
        }

      server.stop();
      const ServerStats s = server.stats();
      EXPECT_EQ(s.queries_submitted, kThreads * kPerThread) << c.name;
      EXPECT_EQ(s.queries_submitted, s.queries_served)
          << c.name << " a faultless run must serve everything";
      EXPECT_EQ(s.update_batches, kBatches) << c.name;
      EXPECT_EQ(s.graph_epoch, kBatches) << c.name;

      // Leak/teardown counters: with all pins released, one collect leaves
      // exactly the head snapshot alive.
      dyn.collect();
      const DynamicGraphStats d = dyn.stats();
      EXPECT_EQ(d.snapshots_created, kBatches + 1) << c.name;
      EXPECT_EQ(d.live_snapshots, 1u) << c.name;
      EXPECT_EQ(d.snapshots_freed, d.snapshots_created - 1) << c.name;
    }
  }
}

TEST(OracleFuzz, ConcurrentMutationWithCacheEveryEpochMatchesItsOracle) {
  // The result-cache closure of the mutation sweep: the same writer /
  // client shape as above, but the server's epoch-keyed cache is ON and
  // every client draws its sources from a 4-entry hot pool, so
  // submit-side hits, dequeue-side hits, and singleflight attaches all
  // fire while the graph mutates underneath. The contract is unchanged
  // and absolute: EVERY result — hit, attached, or owner-computed —
  // byte-matches the serial oracle on the graph of the epoch it reports
  // (the key carries the epoch, so a cache can never serve stale bytes;
  // the apply_updates sweep merely frees the unreachable entries).
  // Classification is also total: a faultless cache-on run resolves each
  // query as exactly one of hit / dedup-attached / miss-owner.
  for (const std::uint64_t seed : kSeeds) {
    for (const FuzzCase& c : fuzz_cases(seed)) {
      if (c.g.num_vertices() < 2) continue;
      DynamicGraphOptions dopt;
      dopt.symmetric = c.symmetric;
      dopt.compact_every = 3;
      DynamicGraph dyn(c.g, dopt);

      ServerOptions so;
      so.num_workers = 2;
      so.coalesce_window_us = 300;
      so.cache.enabled = true;
      Server server(dyn, so);

      constexpr Epoch kBatches = 12;
      constexpr std::uint32_t kThreads = 4, kPerThread = 6;

      std::vector<Csr> epoch_graphs(kBatches + 1);
      {
        SnapshotView v0 = dyn.snapshot();
        epoch_graphs[0] = v0.csr();
      }

      // The hot-source pool every client draws from: small enough that
      // duplicate keys collide across threads and epochs by design.
      std::vector<VertexId> pool;
      {
        Rng prng(seed ^ 0xcac4eu);
        for (int i = 0; i < 4; ++i)
          pool.push_back(
              static_cast<VertexId>(prng.next_below(c.g.num_vertices())));
      }

      std::thread writer([&] {
        std::map<std::pair<VertexId, VertexId>, Weight> adj;
        const Csr& g0 = epoch_graphs[0];
        for (VertexId v = 0; v < g0.num_vertices(); ++v)
          for (EdgeId e = g0.row_start(v); e < g0.row_end(v); ++e)
            adj[{v, g0.col_index(e)}] = g0.weight(e);
        const auto apply_dir = [&](VertexId s, VertexId d, Weight w,
                                   bool ins) {
          if (ins)
            adj[{s, d}] = w;
          else
            adj.erase({s, d});
        };

        Rng rng(seed * 7573 + 2024);
        const VertexId n = c.g.num_vertices();
        for (Epoch k = 1; k <= kBatches; ++k) {
          std::vector<EdgeUpdate> batch;
          for (std::uint32_t i = 0; i < 12; ++i) {
            if (rng.next_bool(0.55) || adj.empty()) {
              batch.push_back(EdgeUpdate::insert_edge(
                  static_cast<VertexId>(rng.next_below(n)),
                  static_cast<VertexId>(rng.next_below(n)),
                  static_cast<Weight>(rng.next_in(1, 64))));
            } else {
              auto it = adj.begin();
              std::advance(it,
                           static_cast<long>(rng.next_below(adj.size())));
              batch.push_back(
                  EdgeUpdate::remove_edge(it->first.first, it->first.second));
            }
          }
          ASSERT_EQ(server.apply_updates(batch), k) << c.name;
          for (const EdgeUpdate& u : batch) {
            apply_dir(u.src, u.dst, u.weight, u.insert);
            if (dopt.symmetric && u.src != u.dst)
              apply_dir(u.dst, u.src, u.weight, u.insert);
          }
          std::vector<EdgeId> offsets(static_cast<std::size_t>(n) + 1, 0);
          std::vector<VertexId> cols;
          std::vector<Weight> weights;
          for (const auto& [edge, w] : adj) {
            offsets[edge.first + 1]++;
            cols.push_back(edge.second);
            weights.push_back(w);
          }
          for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
          epoch_graphs[k] =
              Csr(n, std::move(offsets), std::move(cols), std::move(weights));
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
      });

      struct Issued {
        QueryRequest req;
        QueryTicket ticket;
      };
      std::vector<std::vector<Issued>> issued(kThreads);
      std::vector<std::thread> clients;
      for (std::uint32_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
          Rng rng(seed * 911 + t);
          for (std::uint32_t i = 0; i < kPerThread; ++i) {
            QueryRequest req;
            const std::uint64_t k = rng.next_below(3);
            req.kind = k == 0   ? QueryKind::kBfs
                       : k == 1 ? QueryKind::kSssp
                                : QueryKind::kReachability;
            req.source = pool[rng.next_below(pool.size())];
            issued[t].push_back({req, server.submit(req)});
            std::this_thread::sleep_for(std::chrono::microseconds(150));
          }
        });
      }
      for (std::thread& th : clients) th.join();
      writer.join();

      for (std::uint32_t t = 0; t < kThreads; ++t)
        for (Issued& q : issued[t]) {
          ASSERT_TRUE(q.ticket.wait_for(std::chrono::seconds(30)))
              << c.name << " ticket never resolved";
          const QueryResult r = q.ticket.get();
          ASSERT_LE(r.epoch, kBatches) << c.name;
          const Csr& at_epoch = epoch_graphs[r.epoch];
          const auto depth = serial::bfs(at_epoch, q.req.source);
          if (q.req.kind == QueryKind::kBfs) {
            ASSERT_EQ(r.depth, depth)
                << c.name << " epoch " << r.epoch << " src " << q.req.source
                << (r.cached ? " (cached)" : "");
          } else if (q.req.kind == QueryKind::kSssp) {
            ASSERT_EQ(r.dist, serial::dijkstra(at_epoch, q.req.source))
                << c.name << " epoch " << r.epoch << " src " << q.req.source
                << (r.cached ? " (cached)" : "");
          } else {
            ASSERT_EQ(r.reachable.size(), depth.size()) << c.name;
            for (VertexId v = 0; v < at_epoch.num_vertices(); ++v)
              ASSERT_EQ(r.reachable[v] != 0, depth[v] != kInfinity)
                  << c.name << " epoch " << r.epoch << " src "
                  << q.req.source << " v " << v;
          }
        }

      server.stop();
      const ServerStats s = server.stats();
      EXPECT_EQ(s.queries_submitted, kThreads * kPerThread) << c.name;
      EXPECT_EQ(s.queries_submitted, s.queries_served)
          << c.name << " a faultless run must serve everything";
      EXPECT_EQ(s.cache_hits + s.dedup_attached + s.cache_misses,
                s.queries_submitted)
          << c.name << " every query is classified exactly once";
      EXPECT_LE(s.cache_hits, s.queries_served) << c.name;
      EXPECT_EQ(s.update_batches, kBatches) << c.name;
      EXPECT_EQ(s.graph_epoch, kBatches) << c.name;

      // Reclamation is unchanged by the cache: published entries are
      // value snapshots, never pins, so one collect still leaves exactly
      // the head snapshot alive.
      dyn.collect();
      const DynamicGraphStats d = dyn.stats();
      EXPECT_EQ(d.live_snapshots, 1u) << c.name;
      EXPECT_EQ(d.snapshots_freed, d.snapshots_created - 1) << c.name;
    }
  }
}

TEST(OracleFuzz, MultiWordBatchMatchesSerialEveryLane) {
  // B > 64 exercises multi-word lane masks through the full stack: packed
  // frontier, claim+split, far bank, and wake all handle words_per_vertex
  // == 2 with the schedule forced on.
  const FuzzCase c = power_law_case(5);
  const auto sources = fuzz_sources(c.g, 67);
  simt::Device dev;
  BatchOptions forced;
  forced.delta = 12;
  const BatchSsspResult sssp = batch_sssp(dev, c.g, sources, forced);
  ASSERT_EQ(sssp.delta, 12u);
  ASSERT_EQ(sssp.lane_stats.size(), sources.size());
  const BatchBfsResult bfs = batch_bfs(dev, c.g, sources);
  // Multi-word backend parity: the forced-scalar run must be byte-equal —
  // distances, per-lane schedule stats, and probe-fed edge counts alike.
  BatchOptions forced_scalar = forced;
  forced_scalar.backend.vec = simt::VecBackend::kScalar;
  const BatchSsspResult sc = batch_sssp(dev, c.g, sources, forced_scalar);
  EXPECT_EQ(sc.dist, sssp.dist);
  EXPECT_EQ(sc.lane_stats, sssp.lane_stats);
  EXPECT_EQ(sc.summary.edges_processed, sssp.summary.edges_processed);
  for (std::uint32_t q = 0; q < sources.size(); ++q) {
    const auto dij = serial::dijkstra(c.g, sources[q]);
    const auto lvl = serial::bfs(c.g, sources[q]);
    for (VertexId v = 0; v < c.g.num_vertices(); ++v) {
      ASSERT_EQ(sssp.dist_at(v, q), dij[v]) << "lane " << q << " v " << v;
      ASSERT_EQ(bfs.depth_at(v, q), lvl[v]) << "lane " << q << " v " << v;
    }
  }
}

}  // namespace
}  // namespace grx
