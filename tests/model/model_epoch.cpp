// Exhaustive small-scope spec of the EpochReclaimer pin protocol
// (src/core/epoch.hpp): no snapshot is freed while a reader's validated
// pin covers it, and everything retired is eventually reclaimed once
// pins drop.
//
// Two layers:
//
//   1. The REAL EpochReclaimer<T>, instrumented through the verify seam,
//      driven by a writer publishing versions while readers pin and
//      read. Ghost state (a freed[] side table set by node destructors)
//      stands in for the memory itself, so a protocol violation shows up
//      as a require() failure instead of a real use-after-free the
//      checker could not survive.
//
//   2. A line-for-line replica of the protocol (PinProtocol) with
//      seeded single-line mutations — the breakages the checker must
//      prove it would catch. The replica exists because the real class's
//      API cannot express its own bugs.
//
// Honesty note on the validate loop: under the checker's sequentially-
// consistent semantics, dropping pin()'s validate re-read is NOT a
// catchable bug — with every operation seq_cst, announce-then-read-head
// is already safe (the writer's scan cannot miss a store that precedes
// it in the SC total order). The loop exists for weak memory, where the
// slot store may still sit in a store buffer when the writer scans; that
// class of bug is owned by TSan and the `// mo:` audit, not by this
// checker (see docs/verification.md). kSkipValidate below therefore
// asserts the mutation PASSES — pinning the checker's envelope down in a
// test instead of letting the claim rot in a comment. The catchable
// mutations are the SC-visible ones: announcing after the head read,
// retiring at the pre-publish epoch, and collecting through pins.
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/epoch.hpp"
#include "model_common.hpp"
#include "verify/sched.hpp"

namespace grx::verify {
namespace {

using model::expect_caught;
using model::expect_exhaustive_pass;
using model::kMutationBudget;
using model::print_report;

// ---- layer 1: the real EpochReclaimer ---------------------------------------

constexpr int kVersions = 2;  // publishes per run (epochs 1..kVersions)

struct RealState {
  // Declared first so it outlives the reclaimer: retired nodes freed by
  // the reclaimer's own destructor still find their ghost flag.
  std::array<bool, kVersions + 1> freed{};

  struct Node {
    // Constructed in place (make_unique forwards) — a braced temporary
    // would run this dtor at creation and set the ghost flag spuriously.
    Node(std::array<bool, kVersions + 1>* f, int v) : freed(f), version(v) {}
    ~Node() { (*freed)[static_cast<std::size_t>(version)] = true; }
    std::array<bool, kVersions + 1>* freed;
    int version;
  };

  EpochReclaimer<Node> rec{2};  // two slots: one per reader
  std::atomic<int> head{0};
  std::unique_ptr<const Node> head_owner =
      std::make_unique<const Node>(&freed, 0);
};

void real_reader(const std::shared_ptr<RealState>& st) {
  auto pin = st->rec.pin();
  const int h = sched_load(st->head);
  // The pinned version must stay alive across further scheduling points
  // until release. The ghost reads sit adjacent to seam operations, so
  // every ordering of the writer's frees relative to this critical
  // section is distinguished.
  require(!st->freed[static_cast<std::size_t>(h)],
          "snapshot freed while pinned (use-after-retire)");
  (void)sched_load(st->head);  // widen the window: one more yield point
  require(!st->freed[static_cast<std::size_t>(h)],
          "snapshot freed while pinned (use-after-retire)");
  pin.release();
}

void real_writer(const std::shared_ptr<RealState>& st) {
  for (int v = 1; v <= kVersions; ++v) {
    auto node = std::make_unique<const RealState::Node>(&st->freed, v);
    sched_store(st->head, v);  // publish: new version reachable
    const Epoch e = st->rec.advance();
    st->rec.retire(std::move(st->head_owner), e);
    st->head_owner = std::move(node);
    st->rec.collect();
  }
}

TEST(ModelEpoch, RealReclaimerPinProtocolHolds) {
  const Report r = explore(
      [] {
        auto st = std::make_shared<RealState>();
        VThread w = spawn([st] { real_writer(st); });
        VThread r1 = spawn([st] { real_reader(st); });
        VThread r2 = spawn([st] { real_reader(st); });
        w.join();
        r1.join();
        r2.join();
        // Eventual reclamation: with every pin released, one collect
        // frees everything retired; only the live head survives.
        st->rec.collect();
        for (int v = 0; v < kVersions; ++v)
          require(st->freed[static_cast<std::size_t>(v)],
                  "retired snapshot never reclaimed");
        require(!st->freed[kVersions], "live head snapshot freed");
        require(st->rec.retired_pending() == 0, "retired queue not drained");
      },
      ExploreOptions{.max_schedules = 400000});
  expect_exhaustive_pass("epoch-real-2r1w", r);
}

// ---- layer 2: protocol replica with seeded mutations ------------------------

enum class Mutation {
  kNone,
  kAnnounceAfterRead,        // read head before announcing (TOCTOU)
  kSkipValidate,             // drop the validate re-read (SC-invisible)
  kRetireAtPrePublishEpoch,  // off-by-one: retire at the epoch readers
                             // could still pin with the old head visible
  kCollectIgnoresPins,       // free everything, horizon be damned
};

struct PinProtocol {
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};
  static constexpr int kSlots = 2;

  explicit PinProtocol(Mutation m) : mut(m) {
    for (auto& s : slots) s.store(kIdle);
  }

  Mutation mut;
  std::atomic<std::uint64_t> epoch{0};
  std::array<std::atomic<std::uint64_t>, kSlots> slots;
  std::atomic<int> head{0};
  std::array<bool, kVersions + 1> freed{};
  std::vector<std::pair<std::uint64_t, int>> retired;  // writer-only

  int claim_slot() {
    for (;;) {
      for (int i = 0; i < kSlots; ++i) {
        std::uint64_t expected = kIdle;
        std::uint64_t announced = sched_load(epoch);
        if (!sched_cas_strong(slots[static_cast<std::size_t>(i)], expected,
                              announced))
          continue;
        if (mut != Mutation::kSkipValidate) {
          for (;;) {  // validate: re-announce until stable
            const std::uint64_t now = sched_load(epoch);
            if (now == announced) break;
            announced = now;
            sched_store(slots[static_cast<std::size_t>(i)], announced);
          }
        }
        return i;
      }
    }
  }

  void reader() {
    int slot;
    int h;
    if (mut == Mutation::kAnnounceAfterRead) {
      h = sched_load(head);  // bug: snapshot taken before the announce
      slot = claim_slot();
    } else {
      slot = claim_slot();
      h = sched_load(head);
    }
    require(!freed[static_cast<std::size_t>(h)],
            "snapshot freed while pinned (use-after-retire)");
    (void)sched_load(head);
    require(!freed[static_cast<std::size_t>(h)],
            "snapshot freed while pinned (use-after-retire)");
    sched_store(slots[static_cast<std::size_t>(slot)], kIdle);  // release
  }

  void collect() {
    std::uint64_t horizon = kIdle;
    for (auto& s : slots) {
      const std::uint64_t e = sched_load(s);
      if (e < horizon) horizon = e;
    }
    std::erase_if(retired, [&](const std::pair<std::uint64_t, int>& r) {
      if (mut != Mutation::kCollectIgnoresPins && r.first > horizon)
        return false;
      freed[static_cast<std::size_t>(r.second)] = true;
      return true;
    });
  }

  void writer() {
    int current = 0;
    for (int v = 1; v <= kVersions; ++v) {
      sched_store(head, v);
      const std::uint64_t e = sched_fetch_add(epoch, 1) + 1;
      retired.emplace_back(
          mut == Mutation::kRetireAtPrePublishEpoch ? e - 1 : e, current);
      current = v;
      collect();
    }
  }
};

Report explore_replica(Mutation mut) {
  return explore(
      [mut] {
        auto p = std::make_shared<PinProtocol>(mut);
        VThread w = spawn([p] { p->writer(); });
        VThread r1 = spawn([p] { p->reader(); });
        VThread r2 = spawn([p] { p->reader(); });
        w.join();
        r1.join();
        r2.join();
        p->collect();
        for (int v = 0; v < kVersions; ++v)
          require(p->freed[static_cast<std::size_t>(v)],
                  "retired snapshot never reclaimed");
        require(!p->freed[kVersions], "live head snapshot freed");
      },
      ExploreOptions{.max_schedules = 400000});
}

TEST(ModelEpoch, ReplicaTrunkHolds) {
  expect_exhaustive_pass("epoch-replica-trunk",
                         explore_replica(Mutation::kNone));
}

TEST(ModelEpoch, MutationAnnounceAfterReadCaught) {
  expect_caught("epoch-mut-announce-after-read",
                explore_replica(Mutation::kAnnounceAfterRead));
}

TEST(ModelEpoch, MutationRetireAtPrePublishEpochCaught) {
  expect_caught("epoch-mut-retire-early",
                explore_replica(Mutation::kRetireAtPrePublishEpoch));
}

TEST(ModelEpoch, MutationCollectIgnoresPinsCaught) {
  expect_caught("epoch-mut-collect-unpinned",
                explore_replica(Mutation::kCollectIgnoresPins));
}

// Documented checker-envelope boundary, not a wished-away bug: under SC
// semantics the validate loop is redundant, so this mutation must PASS —
// see the header comment. If this test ever starts failing, the checker
// gained non-SC power and the comment (and docs) must be rewritten.
TEST(ModelEpoch, MutationSkipValidateIsScInvisible) {
  const Report r = explore_replica(Mutation::kSkipValidate);
  print_report("epoch-mut-skip-validate", r);
  EXPECT_FALSE(r.violation)
      << "validate-drop became SC-visible; update the envelope docs: "
      << r.message;
  EXPECT_FALSE(r.budget_exhausted);
}

}  // namespace
}  // namespace grx::verify
