// Exhaustive small-scope spec of the REAL CancelToken (src/core/cancel.hpp)
// under a racing cancel: a parent tripped concurrently with child_of()
// and the child's per-round checkpoints must never lose the stop request.
//
// Unlike the server-side protocols, CancelToken is header-only, so the
// model drives the production class itself (instrumented through the
// seam) — no replica needed. The properties:
//
//   - Monotonic visibility: once child.cancelled() returns true, the next
//     checkpoint MUST throw CancelledError — a checkpoint can never
//     "un-see" an ancestor's trip.
//   - No lost cancel: after the canceller is joined, the chain walk from
//     any child (even one minted after the fact) observes the trip, and a
//     checkpoint on it stops the enactment.
//   - A child minted while cancel() is in flight is safe either way: the
//     enactment either runs to completion (cancel landed too late) or
//     stops with the typed error — never anything else.
#include <cstdint>
#include <memory>

#include "core/cancel.hpp"
#include "model_common.hpp"
#include "verify/sched.hpp"

namespace grx::verify {
namespace {

using model::expect_exhaustive_pass;

constexpr std::uint32_t kRounds = 2;

struct CancelState {
  CancelToken parent = CancelToken::make();
  bool stopped = false;        // enactor: checkpoint threw CancelledError
  bool completed = false;      // enactor: ran all rounds unstopped
};

// The enacting side: mint a child mid-race (the server wraps the client
// token exactly this way) and run the between-rounds checkpoint loop.
void enactor(const std::shared_ptr<CancelState>& st) {
  const CancelToken child = CancelToken::child_of(st->parent);
  for (std::uint32_t r = 0; r < kRounds; ++r) {
    const bool visible = child.cancelled();
    bool threw = false;
    try {
      child.checkpoint(r);
    } catch (const CancelledError&) {
      threw = true;
    }
    if (visible)
      require(threw, "checkpoint ignored an already-visible ancestor cancel");
    if (threw) {
      st->stopped = true;
      return;
    }
  }
  st->completed = true;
}

TEST(ModelCancel, ParentCancelRacesChildCheckpoints) {
  const Report r = explore([] {
    auto st = std::make_shared<CancelState>();
    VThread canceller = spawn([st] { st->parent.cancel(); });
    VThread enact = spawn([st] { enactor(st); });
    canceller.join();
    enact.join();
    // Exactly one fate, never both and never neither.
    require(st->stopped != st->completed,
            "enactment neither stopped nor completed (or both)");
    // The cancel is globally visible once the canceller is joined: a
    // child minted NOW (parent cancelled between child_of and its first
    // checkpoint, taken to the limit) must observe the trip through the
    // chain walk and stop immediately.
    require(st->parent.cancelled(), "parent lost its own cancel");
    const CancelToken late = CancelToken::child_of(st->parent);
    require(late.cancelled(), "late child does not see ancestor trip");
    bool threw = false;
    try {
      late.checkpoint(0);
    } catch (const CancelledError&) {
      threw = true;
    }
    require(threw, "checkpoint after joined cancel did not stop");
  });
  expect_exhaustive_pass("cancel-parent-child-race", r);
}

// Two independent children of one parent: a single cancel stops both —
// no checkpoint order loses it for either sibling.
TEST(ModelCancel, SiblingChildrenBothStop) {
  const Report r = explore([] {
    auto st = std::make_shared<CancelState>();
    auto st2 = std::make_shared<CancelState>();
    st2->parent = st->parent;  // shared ancestor
    VThread canceller = spawn([st] { st->parent.cancel(); });
    VThread e1 = spawn([st] { enactor(st); });
    VThread e2 = spawn([st2] { enactor(st2); });
    canceller.join();
    e1.join();
    e2.join();
    require(st->stopped != st->completed, "sibling 1: inconsistent fate");
    require(st2->stopped != st2->completed, "sibling 2: inconsistent fate");
  });
  expect_exhaustive_pass("cancel-two-siblings", r);
}

}  // namespace
}  // namespace grx::verify
