// Exhaustive small-scope spec of the Server's ticket resolution
// discipline (src/api/server.cpp): a QueryTicket resolves EXACTLY once no
// matter how worker completion, cooperative cancellation, and the
// watchdog's worker-failure path race.
//
// The protocol under test is QueryTicket::State's fulfill logic — take
// the ticket mutex, give up if already done, otherwise publish the
// outcome and flip done — replicated here because it lives in a .cpp the
// model binary must not link (ODR: libgrx is compiled without the seam).
// The replica keeps the load-bearing lines in the same shape:
//
//     std::lock_guard<std::mutex> lock(s->m);      -> SchedMutex
//     if (s->done) return;                         -> the exactly-once guard
//     s->outcome = ...; s->done = true; cv.notify  -> publish
//
// The outcome cell goes through the seam (it is the raced object whose
// write orders the mutations below must reach), while `done` stays a
// plain mutex-guarded bool exactly like the production struct.
//
// Mutations: dropping the done-guard (kNoGuard) and publishing the
// outcome before taking the lock (kPublishOutsideLock) must both be
// caught.
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "model_common.hpp"
#include "verify/sched.hpp"

namespace grx::verify {
namespace {

using model::expect_caught;
using model::expect_exhaustive_pass;

enum class Outcome : std::uint8_t {
  kPending,
  kOk,
  kCancelled,
  kWorkerFailed,
};

enum class Mutation {
  kNone,
  kNoGuard,             // drop `if (done) return` — double resolution
  kPublishOutsideLock,  // write outcome before acquiring the mutex
};

struct Ticket {
  explicit Ticket(Mutation m) : mut(m) {}

  Mutation mut;
  SchedMutex m;
  bool done = false;  // guarded by m
  std::atomic<Outcome> outcome{Outcome::kPending};
  int resolutions = 0;            // ghost: how many resolvers won
  Outcome won = Outcome::kPending;  // ghost: the winner's outcome

  void fulfill(Outcome o) {
    if (mut == Mutation::kPublishOutsideLock) {
      // Bug: the resolver stages its outcome before winning the race —
      // a losing resolver can clobber the winner's published result.
      sched_store(outcome, o);
    }
    std::lock_guard<SchedMutex> lock(m);
    if (mut != Mutation::kNoGuard) {
      if (done) return;  // someone else resolved first: exactly-once
    }
    done = true;
    if (mut != Mutation::kPublishOutsideLock) sched_store(outcome, o);
    won = o;
    ++resolutions;
  }
};

// Worker success vs. client cancel vs. watchdog failure — the three
// resolvers grx::Server can race on one ticket (resolve_success /
// resolve_error / the watchdog's fail_inflight).
Report explore_ticket(Mutation mut) {
  return explore([mut] {
    auto t = std::make_shared<Ticket>(mut);
    VThread worker = spawn([t] { t->fulfill(Outcome::kOk); });
    VThread canceller = spawn([t] { t->fulfill(Outcome::kCancelled); });
    VThread watchdog = spawn([t] { t->fulfill(Outcome::kWorkerFailed); });
    worker.join();
    canceller.join();
    watchdog.join();
    require(t->resolutions == 1, "ticket resolved more than once");
    require(t->done, "ticket never resolved");
    const Outcome final = sched_load(t->outcome);
    require(final != Outcome::kPending, "done ticket with no outcome");
    // The published outcome must be the winner's: a loser overwriting it
    // hands the client a result that does not match the ticket's fate
    // (e.g. a "cancelled" error for a query whose worker succeeded).
    require(final == t->won, "published outcome is not the winner's");
  });
}

TEST(ModelTicket, ResolveExactlyOnceHolds) {
  expect_exhaustive_pass("ticket-trunk-3resolvers",
                         explore_ticket(Mutation::kNone));
}

TEST(ModelTicket, MutationNoGuardCaught) {
  expect_caught("ticket-mut-no-guard", explore_ticket(Mutation::kNoGuard));
}

TEST(ModelTicket, MutationPublishOutsideLockCaught) {
  expect_caught("ticket-mut-outside-lock",
                explore_ticket(Mutation::kPublishOutsideLock));
}

}  // namespace
}  // namespace grx::verify
