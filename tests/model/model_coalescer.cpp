// Exhaustive small-scope spec of the Server's batch-coalescing worker
// loop (src/api/server.cpp, Server::worker_loop): submissions racing the
// coalesce-window close, a concurrent graph-epoch publish, and shutdown
// must leave every submitted query served exactly once, at a snapshot no
// older than the one that existed when it was queued.
//
// The protocol is replicated here (the production loop lives in a .cpp
// the model binary must not link — ODR: libgrx is compiled without the
// seam) with the load-bearing lines in the same shape:
//
//     cv_.wait(lk, [&]{ return stopped_ || !queue_.empty(); });
//     if (queue_.empty()) return;     // stopped AND fully drained
//     <dequeue batch>                 // the close of one coalesce window
//     if (dyn_) w.view = dyn_->snapshot();   // pin the epoch AT dequeue
//     lk.unlock(); execute(w, batch); batch.clear();
//
// Timed window waits (wait_until) collapse to "drain whatever is queued
// at dequeue": model time has no clock, and the window-close moment is
// already covered by the nondeterministic choice of WHEN the worker's
// dequeue step runs relative to submits and publishes.
//
// Mutations (single-line breakages the checker must catch):
//   - kExitWithoutDrain: shutdown path returns on `stopped` instead of
//     `queue.empty()` — a query queued before stop() is silently lost.
//   - kStaleBatchReuse: drop the batch.clear() between iterations — the
//     previous window's queries are served again with the next batch.
//   - kPinBeforeWait: read the serving epoch before parking on the cv
//     instead of at dequeue — a query submitted after an epoch publish is
//     served at the stale pre-publish snapshot.
#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "model_common.hpp"
#include "verify/sched.hpp"

namespace grx::verify {
namespace {

using model::expect_caught;
using model::expect_exhaustive_pass;

enum class Mutation {
  kNone,
  kExitWithoutDrain,
  kStaleBatchReuse,
  kPinBeforeWait,
};

constexpr int kItems = 2;

struct Coalescer {
  explicit Coalescer(Mutation m) : mut(m) {}

  Mutation mut;
  SchedMutex m;
  SchedCondVar cv;

  // Guarded by m — the submission queue and shutdown flag, as in Server.
  std::array<int, kItems> queue{};
  int qhead = 0;
  int qtail = 0;
  bool stopped = false;

  // The graph's publish counter (DynamicGraph epoch), read through the
  // seam: its advance races the window close.
  std::atomic<std::uint64_t> epoch{0};

  // Ghost state: how often each query was served and at which snapshot;
  // the submit-time snapshot it must not be served older than.
  std::array<int, kItems> served{};
  std::array<std::uint64_t, kItems> served_at{};
  std::array<std::uint64_t, kItems> submitted_at{};

  void submit(int id) {
    {
      std::lock_guard<SchedMutex> g(m);
      submitted_at[static_cast<std::size_t>(id)] = sched_load(epoch);
      queue[static_cast<std::size_t>(qtail)] = id;
      ++qtail;
    }
    // Outside the lock, notify_all — as in Server::submit (a worker mid-
    // window must wake to fuse the arrival).
    cv.notify_all();
  }

  void stop() {
    {
      std::lock_guard<SchedMutex> g(m);
      stopped = true;
    }
    cv.notify_all();
  }

  void worker() {
    std::array<int, kItems> batch{};
    int n = 0;
    for (;;) {
      if (mut != Mutation::kStaleBatchReuse) n = 0;  // batch.clear()
      std::uint64_t batch_epoch = 0;
      if (mut == Mutation::kPinBeforeWait) batch_epoch = sched_load(epoch);
      std::unique_lock<SchedMutex> lk(m);
      cv.wait(m, [&] { return stopped || qhead != qtail; });
      // Bug under test: bail on shutdown WITHOUT draining what's queued.
      if (mut == Mutation::kExitWithoutDrain && stopped) return;
      // Production's exit: an empty queue after the wait means stopped
      // AND fully drained (the predicate guarantees one of the two) — or
      // an abandoned run's teardown, where returning is equally right.
      if (qhead == qtail) return;
      // The window close: take everything queued (drain_compatible), and
      // pin the serving snapshot NOW, at dequeue.
      if (mut != Mutation::kPinBeforeWait) batch_epoch = sched_load(epoch);
      while (qhead != qtail && n < kItems) {
        batch[static_cast<std::size_t>(n)] =
            queue[static_cast<std::size_t>(qhead)];
        ++n;
        ++qhead;
      }
      lk.unlock();
      // execute(w, batch) — outside the lock, as in production.
      for (int i = 0; i < n; ++i) {
        const int id = batch[static_cast<std::size_t>(i)];
        ++served[static_cast<std::size_t>(id)];
        served_at[static_cast<std::size_t>(id)] = batch_epoch;
      }
    }
  }
};

Report explore_coalescer(Mutation mut) {
  return explore(
      [mut] {
        auto c = std::make_shared<Coalescer>(mut);
        VThread worker = spawn([c] { c->worker(); });
        VThread producer = spawn([c] {
          for (int id = 0; id < kItems; ++id) c->submit(id);
        });
        VThread publisher = spawn([c] {
          // One graph publish racing the window: DynamicGraph::publish's
          // epoch advance.
          sched_fetch_add(c->epoch, 1);
        });
        producer.join();
        publisher.join();
        c->stop();
        worker.join();
        for (int id = 0; id < kItems; ++id) {
          const auto i = static_cast<std::size_t>(id);
          require(c->served[i] != 0, "query lost: submitted, never served");
          require(c->served[i] == 1, "query served more than once");
          require(c->served_at[i] >= c->submitted_at[i],
                  "query served at a snapshot older than its submit epoch");
        }
      },
      ExploreOptions{.max_schedules = 400000});
}

TEST(ModelCoalescer, WindowPublishStopHolds) {
  expect_exhaustive_pass("coalescer-trunk",
                         explore_coalescer(Mutation::kNone));
}

TEST(ModelCoalescer, MutationExitWithoutDrainCaught) {
  expect_caught("coalescer-mut-exit-no-drain",
                explore_coalescer(Mutation::kExitWithoutDrain));
}

TEST(ModelCoalescer, MutationStaleBatchReuseCaught) {
  expect_caught("coalescer-mut-stale-batch",
                explore_coalescer(Mutation::kStaleBatchReuse));
}

TEST(ModelCoalescer, MutationPinBeforeWaitCaught) {
  expect_caught("coalescer-mut-pin-before-wait",
                explore_coalescer(Mutation::kPinBeforeWait));
}

}  // namespace
}  // namespace grx::verify
