// The model checker's own regression: known-racy programs it MUST flag,
// known-safe programs it MUST pass, and independence patterns DPOR MUST
// prune. If this file fails, no other model spec's verdict means
// anything.
#include <atomic>
#include <memory>
#include <mutex>

#include "model_common.hpp"
#include "verify/sched.hpp"

namespace grx::verify {
namespace {

using model::expect_caught;
using model::expect_exhaustive_pass;
using model::print_report;

// Two load-then-store increments lose an update in some schedule: the
// canonical must-catch bug.
TEST(ModelSelfTest, CatchesLostUpdate) {
  const Report r = explore([] {
    auto x = std::make_shared<std::atomic<int>>(0);
    auto incr = [x] {
      const int v = sched_load(*x);
      sched_store(*x, v + 1);
    };
    VThread a = spawn(incr);
    VThread b = spawn(incr);
    a.join();
    b.join();
    require(sched_load(*x) == 2, "one increment was lost");
  });
  expect_caught("lost-update", r);
}

// The same program with an atomic RMW is correct under every schedule —
// and the two fetch_adds commute, so DPOR needs very few runs.
TEST(ModelSelfTest, PassesAtomicIncrement) {
  const Report r = explore([] {
    auto x = std::make_shared<std::atomic<int>>(0);
    auto incr = [x] { sched_fetch_add(*x, 1); };
    VThread a = spawn(incr);
    VThread b = spawn(incr);
    a.join();
    b.join();
    require(sched_load(*x) == 2, "both increments visible");
  });
  expect_exhaustive_pass("atomic-increment", r);
}

// Threads touching disjoint objects: every interleaving is equivalent,
// so DPOR should need O(1) complete runs against a ~10^5 naive count.
TEST(ModelSelfTest, PrunesIndependentThreads) {
  const Report r = explore([] {
    auto a = std::make_shared<std::atomic<int>>(0);
    auto b = std::make_shared<std::atomic<int>>(0);
    VThread ta = spawn([a] {
      for (int k = 0; k < 3; ++k) sched_fetch_add(*a, 1);
    });
    VThread tb = spawn([b] {
      for (int k = 0; k < 3; ++k) sched_fetch_add(*b, 1);
    });
    ta.join();
    tb.join();
    require(sched_load(*a) == 3 && sched_load(*b) == 3, "per-object counts");
  });
  print_report("independent-objects", r);
  EXPECT_FALSE(r.violation) << r.message;
  // Fully commuting programs collapse to a handful of runs; the naive
  // count for 2x(3+1) interleaved steps is in the tens of thousands.
  EXPECT_LE(r.explored(), 8u);
  EXPECT_GT(r.naive_interleavings, 10000.0L);
}

// Classic AB-BA lock-order inversion deadlocks in some schedule.
TEST(ModelSelfTest, CatchesLockOrderDeadlock) {
  const Report r = explore([] {
    auto a = std::make_shared<SchedMutex>();
    auto b = std::make_shared<SchedMutex>();
    VThread t1 = spawn([a, b] {
      std::lock_guard<SchedMutex> ga(*a);
      std::lock_guard<SchedMutex> gb(*b);
    });
    VThread t2 = spawn([a, b] {
      std::lock_guard<SchedMutex> gb(*b);
      std::lock_guard<SchedMutex> ga(*a);
    });
    t1.join();
    t2.join();
  });
  print_report("abba-deadlock", r);
  EXPECT_TRUE(r.violation);
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
}

// Mutex-guarded non-atomic increments are correct under every schedule.
TEST(ModelSelfTest, PassesMutexExclusion) {
  const Report r = explore([] {
    auto m = std::make_shared<SchedMutex>();
    auto x = std::make_shared<int>(0);
    auto incr = [m, x] {
      std::lock_guard<SchedMutex> g(*m);
      ++*x;
    };
    VThread a = spawn(incr);
    VThread b = spawn(incr);
    a.join();
    b.join();
    require(*x == 2, "mutex exclusion");
  });
  print_report("mutex-exclusion", r);
  EXPECT_FALSE(r.violation) << r.message;
  EXPECT_FALSE(r.budget_exhausted);
}

// A three-thread store/store/load race on one object: exploration must
// cover both final values and the invariant distinguishing them must
// trip — exercises RMW-free store dependence.
TEST(ModelSelfTest, CatchesStoreOrderAssumption) {
  const Report r = explore([] {
    auto x = std::make_shared<std::atomic<int>>(0);
    VThread w1 = spawn([x] { sched_store(*x, 1); });
    VThread w2 = spawn([x] { sched_store(*x, 2); });
    w1.join();
    w2.join();
    // Wrong claim: "w2's store always lands last".
    require(sched_load(*x) == 2, "store order is schedule-dependent");
  });
  expect_caught("store-order", r);
}

}  // namespace
}  // namespace grx::verify
