// Shared harness for the model-check suite (tests/model/*).
//
// These binaries are compiled with -DGRX_MODEL_CHECK and deliberately do
// NOT link libgrx: the library's objects are built without the define, so
// linking them would violate the ODR for every inline function that
// contains a seam point. Each spec includes the headers it exercises
// (they are self-contained — the header lint proves it) and gets its own
// instrumented instantiation.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>

#include "verify/explore.hpp"
#include "verify/sched.hpp"

static_assert(GRX_VERIFY_SEAM_ACTIVE == 1,
              "model specs must be compiled with -DGRX_MODEL_CHECK; a "
              "passthrough seam would explore exactly one schedule and "
              "prove nothing");

namespace grx::verify::model {

/// Mutation-catch budget from the issue: every seeded single-line
/// breakage must be caught within this many explored schedules.
inline constexpr std::uint64_t kMutationBudget = 100000;

inline void print_report(const char* name, const Report& r) {
  std::printf(
      "[ model  ] %-28s explored=%llu (complete=%llu pruned=%llu) "
      "steps=%llu naive~%.3Le%s%s\n",
      name, static_cast<unsigned long long>(r.explored()),
      static_cast<unsigned long long>(r.complete_runs),
      static_cast<unsigned long long>(r.pruned_runs),
      static_cast<unsigned long long>(r.steps), r.naive_interleavings,
      r.violation ? " VIOLATION: " : "", r.violation ? r.message.c_str() : "");
}

/// Trunk spec: must hold under every schedule, with DPOR exploring
/// strictly fewer schedules than the naive interleaving count.
inline void expect_exhaustive_pass(const char* name, const Report& r) {
  print_report(name, r);
  EXPECT_FALSE(r.violation) << name << ": " << r.message;
  EXPECT_FALSE(r.budget_exhausted) << name << ": " << r.message;
  EXPECT_GT(r.complete_runs, 0u) << name;
  EXPECT_LT(static_cast<long double>(r.explored()), r.naive_interleavings)
      << name << ": DPOR explored at least as many schedules as the naive "
      << "enumeration — pruning is broken";
}

/// Seeded mutation: some schedule must violate, within the issue's
/// 10^5-explored-schedules budget.
inline void expect_caught(const char* name, const Report& r) {
  print_report(name, r);
  EXPECT_TRUE(r.violation)
      << name << ": seeded bug survived exhaustive exploration";
  EXPECT_LT(r.explored(), kMutationBudget) << name;
}

}  // namespace grx::verify::model
