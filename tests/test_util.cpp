#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/bitset.hpp"
#include "util/cli.hpp"
#include "util/per_thread.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace grx {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(17), 17u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng r(9);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    lo_seen |= v == 3;
    hi_seen |= v == 5;
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Stats, GeometricMean) {
  const double xs[] = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(xs), 4.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, GeometricMeanRejectsNonPositive) {
  const double xs[] = {1.0, 0.0};
  EXPECT_THROW(geometric_mean(xs), CheckError);
}

TEST(Stats, MeanAndStddev) {
  const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(mean(xs), 5.0, 1e-12);
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Stats, Percentile) {
  const double xs[] = {4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_NEAR(percentile(xs, 0), 1.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 100), 4.0, 1e-12);
  EXPECT_NEAR(percentile(xs, 50), 2.5, 1e-12);
}

TEST(Stats, Histogram) {
  const double xs[] = {0.1, 0.2, 0.6, 0.9, -1.0, 2.0};
  const auto h = histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_EQ(h[0], 2u);  // 0.1, 0.2
  EXPECT_EQ(h[1], 2u);  // 0.6, 0.9; out-of-range values dropped
}

TEST(Table, AlignsAndCounts) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("| name"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, NumFormatsNaNAsDash) {
  EXPECT_EQ(Table::num(std::nan("")), "--");
  EXPECT_EQ(Table::num(1.2345, 2), "1.23");
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1", "--beta=x"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("alpha", 0), 3);
  EXPECT_TRUE(cli.has("flag"));
  EXPECT_EQ(cli.get("beta"), "x");
  EXPECT_EQ(cli.get("missing", "d"), "d");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
}

TEST(Cli, GetDouble) {
  const char* argv[] = {"prog", "--x=2.5"};
  Cli cli(2, argv);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(cli.get_double("y", 1.5), 1.5);
}

TEST(AtomicBitset, SetTestCount) {
  AtomicBitset bs(130);
  EXPECT_EQ(bs.count(), 0u);
  bs.set(0);
  bs.set(64);
  bs.set(129);
  EXPECT_TRUE(bs.test(0));
  EXPECT_TRUE(bs.test(64));
  EXPECT_TRUE(bs.test(129));
  EXPECT_FALSE(bs.test(1));
  EXPECT_EQ(bs.count(), 3u);
}

TEST(AtomicBitset, TestAndSetClaimsOnce) {
  AtomicBitset bs(10);
  EXPECT_TRUE(bs.test_and_set(5));
  EXPECT_FALSE(bs.test_and_set(5));
}

TEST(AtomicBitset, ConcurrentClaimsAreUnique) {
  AtomicBitset bs(1);
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      if (bs.test_and_set(0)) winners.fetch_add(1);
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(winners.load(), 1);
}

TEST(AtomicBitset, ClearResets) {
  AtomicBitset bs(100);
  bs.set(42);
  bs.clear();
  EXPECT_EQ(bs.count(), 0u);
}

TEST(AtomicBitset, OutOfRangeThrows) {
  AtomicBitset bs(8);
  EXPECT_THROW(bs.test(8), CheckError);
}

TEST(PerThread, DrainConcatenates) {
  PerThread<std::vector<int>> pt;
  pt.local().push_back(1);
  pt.local().push_back(2);
  std::vector<int> out{0};
  pt.drain_into(out);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  // Buffers are cleared after drain.
  std::vector<int> out2;
  pt.drain_into(out2);
  EXPECT_TRUE(out2.empty());
}

}  // namespace
}  // namespace grx
